(** Scalar expressions (TensorIR's PrimExpr).

    Smart constructors ([add], [mul], ...) perform local constant folding and
    unit-element elimination so that index arithmetic produced by schedule
    primitives stays small without a separate simplification pass; the full
    rewriting simplifier lives in [Tir_arith.Simplify]. *)

type binop = Add | Sub | Mul | Div | Mod | Min | Max
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Int of int
  | Float of float * Dtype.t
  | Bool of bool
  | Var of Var.t
  | Bin of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Select of t * t * t  (** [Select (cond, then_, else_)] *)
  | Cast of Dtype.t * t
  | Load of Buffer.t * t list  (** buffer element read *)
  | Call of string * Dtype.t * t list  (** opaque intrinsic call *)
  | Ptr of Buffer.t * t list
      (** pointer to a buffer element, passed to low-level tensor intrinsics *)

let zero = Int 0
let one = Int 1

let fzero dt = Float (0.0, dt)

(* Integer division and modulo follow floor semantics (like TVM's floordiv /
   floormod): all loop extents are positive so this matches Euclidean
   division for the cases that arise. *)
let floordiv a b = if (a < 0) <> (b < 0) && a mod b <> 0 then (a / b) - 1 else a / b
let floormod a b = a - (floordiv a b * b)

let rec dtype = function
  | Int _ -> Dtype.Int
  | Float (_, dt) -> dt
  | Bool _ -> Dtype.Bool
  | Var v -> v.Var.dtype
  | Bin (_, a, b) -> (
      match dtype a with Dtype.Int -> dtype b | dt -> dt)
  | Cmp _ | And _ | Or _ | Not _ -> Dtype.Bool
  | Select (_, a, _) -> dtype a
  | Cast (dt, _) -> dt
  | Load (b, _) -> b.Buffer.dtype
  | Call (_, dt, _) -> dt
  | Ptr _ -> Dtype.Int

let eval_int_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> floordiv a b
  | Mod -> floormod a b
  | Min -> min a b
  | Max -> max a b

let eval_float_binop op a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Mod -> Float.rem a b
  | Min -> Float.min a b
  | Max -> Float.max a b

let eval_cmp_int op a b =
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

(* Hash-consing is *opt-in* ([intern] below), not wired into the smart
   constructors: benchmarking the search hot path showed a per-construction
   table probe taxing every stage that builds expressions (schedule
   application, the bounds prover's simplifier, the machine model) by ~3x
   for a sharing win the pipeline never cashes in — program identity there
   is carried by structural fingerprints ([Fingerprint]), not physical
   identity. Callers that hold many structurally-overlapping trees alive
   (pattern tables, long-lived caches) canonicalize explicitly with
   [intern]; [equal] keeps its [(==)] fast path, which interned values hit
   every time.

   The intern table is keyed by *shallow* equality — constructor and leaf
   payloads compared by value, child expressions by physical identity.
   This is sound without any global invariant: [intern] canonicalizes
   children first, so shallow equality coincides with structural equality
   on that path; a tree that was never interned merely misses sharing, it
   is never wrongly identified. Floats are compared by bit pattern so the
   table invariant ([equal] entries hash alike under the structural
   [Hashtbl.hash]) holds even for NaNs and signed zeros. *)

let phys_list_equal a b =
  List.length a = List.length b && List.for_all2 ( == ) a b

let shallow_equal (x : t) (y : t) =
  match (x, y) with
  | Int a, Int b -> a = b
  | Float (a, da), Float (b, db) ->
      Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) && Dtype.equal da db
  | Bool a, Bool b -> a = b
  | Var a, Var b -> Var.equal a b
  | Bin (o1, a1, b1), Bin (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) -> a1 == a2 && b1 == b2
  | Not a1, Not a2 -> a1 == a2
  | Select (c1, a1, b1), Select (c2, a2, b2) -> c1 == c2 && a1 == a2 && b1 == b2
  | Cast (d1, a1), Cast (d2, a2) -> Dtype.equal d1 d2 && a1 == a2
  | Load (b1, i1), Load (b2, i2) | Ptr (b1, i1), Ptr (b2, i2) ->
      Buffer.equal b1 b2 && phys_list_equal i1 i2
  | Call (n1, d1, a1), Call (n2, d2, a2) ->
      String.equal n1 n2 && Dtype.equal d1 d2 && phys_list_equal a1 a2
  | _ -> false

module Intern = Hashtbl.Make (struct
  type nonrec t = t

  let equal = shallow_equal

  (* Depth-limited structural hash: shallow-equal nodes are structurally
     equal trees, hence hash alike; collisions only cost a bucket scan
     resolved by [shallow_equal]. *)
  let hash = Hashtbl.hash
end)

let intern_cap = 1 lsl 17

let intern_tbl : t Intern.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Intern.create 4096)

let hashcons (e : t) : t =
  let tbl = Domain.DLS.get intern_tbl in
  match Intern.find_opt tbl e with
  | Some c -> c
  | None ->
      if Intern.length tbl >= intern_cap then Intern.reset tbl;
      Intern.add tbl e e;
      e

let bin op a b =
  match (op, a, b) with
  | _, Int x, Int y -> Int (eval_int_binop op x y)
  | _, Float (x, dt), Float (y, _) -> Float (eval_float_binop op x y, dt)
  | Add, Int 0, e | Add, e, Int 0 -> e
  | Sub, e, Int 0 -> e
  | Mul, Int 1, e | Mul, e, Int 1 -> e
  | Mul, Int 0, _ | Mul, _, Int 0 -> Int 0
  | Div, e, Int 1 -> e
  | Mod, _, Int 1 -> Int 0
  | Add, Float (0.0, _), e | Add, e, Float (0.0, _) -> e
  | Mul, Float (1.0, _), e | Mul, e, Float (1.0, _) -> e
  | _ -> Bin (op, a, b)

let add a b = bin Add a b
let sub a b = bin Sub a b
let mul a b = bin Mul a b
let div a b = bin Div a b
let mod_ a b = bin Mod a b
let min_ a b = if a = b then a else bin Min a b
let max_ a b = if a = b then a else bin Max a b

let cmp op a b =
  match (a, b) with
  | Int x, Int y -> Bool (eval_cmp_int op x y)
  | _ -> Cmp (op, a, b)

let eq a b = cmp Eq a b
let lt a b = cmp Lt a b
let le a b = cmp Le a b
let ge a b = cmp Ge a b

let and_ a b =
  match (a, b) with
  | Bool true, e | e, Bool true -> e
  | Bool false, _ | _, Bool false -> Bool false
  | _ -> And (a, b)

let or_ a b =
  match (a, b) with
  | Bool false, e | e, Bool false -> e
  | Bool true, _ | _, Bool true -> Bool true
  | _ -> Or (a, b)

let not_ = function Bool b -> Bool (not b) | Not e -> e | e -> Not e

let cast dt e = if Dtype.equal (dtype e) dt then e else Cast (dt, e)
let var v = Var v
let int i = Int i
let float ?(dtype = Dtype.F32) f = Float (f, dtype)
let load buf indices = Load (buf, indices)

let select c t f =
  match c with Bool true -> t | Bool false -> f | _ -> Select (c, t, f)

(* Structure-preserving deep canonicalization: rebuilds every node with
   canonical children and interns it, without re-running the folding smart
   constructors (so [intern e] is always structurally equal to [e]). *)
let rec intern e =
  let e =
    match e with
    | Int _ | Float _ | Bool _ | Var _ -> e
    | Bin (op, a, b) -> Bin (op, intern a, intern b)
    | Cmp (op, a, b) -> Cmp (op, intern a, intern b)
    | And (a, b) -> And (intern a, intern b)
    | Or (a, b) -> Or (intern a, intern b)
    | Not a -> Not (intern a)
    | Select (c, a, b) -> Select (intern c, intern a, intern b)
    | Cast (dt, a) -> Cast (dt, intern a)
    | Load (b, idx) -> Load (b, List.map intern idx)
    | Call (n, dt, args) -> Call (n, dt, List.map intern args)
    | Ptr (b, idx) -> Ptr (b, List.map intern idx)
  in
  hashcons e

(** Infix operators for index arithmetic. *)
module Infix = struct
  let ( +: ) = add
  let ( -: ) = sub
  let ( *: ) = mul
  let ( /: ) = div
  let ( %: ) = mod_
  let ( =: ) = eq
  let ( <: ) = lt
  let ( <=: ) = le
end

(** [map_children f e] rebuilds [e] with [f] applied to each direct
    sub-expression. *)
let map_children f e =
  match e with
  | Int _ | Float _ | Bool _ | Var _ -> e
  | Bin (op, a, b) -> bin op (f a) (f b)
  | Cmp (op, a, b) -> cmp op (f a) (f b)
  | And (a, b) -> and_ (f a) (f b)
  | Or (a, b) -> or_ (f a) (f b)
  | Not a -> not_ (f a)
  | Select (c, a, b) -> select (f c) (f a) (f b)
  | Cast (dt, a) -> cast dt (f a)
  | Load (buf, idx) -> Load (buf, List.map f idx)
  | Call (name, dt, args) -> Call (name, dt, List.map f args)
  | Ptr (buf, idx) -> Ptr (buf, List.map f idx)

(** Capture-free substitution of variables. *)
let rec subst lookup e =
  match e with
  | Var v -> ( match lookup v with Some e' -> e' | None -> e)
  | _ -> map_children (subst lookup) e

let subst_map map e = subst (fun v -> Var.Map.find_opt v map) e

(** Replace loads of one buffer by another (same indices); used by cache and
    layout primitives. *)
let rec replace_buffer ~from ~to_ e =
  let e = map_children (replace_buffer ~from ~to_) e in
  match e with
  | Load (b, idx) when Buffer.equal b from -> Load (to_, idx)
  | Ptr (b, idx) when Buffer.equal b from -> Ptr (to_, idx)
  | _ -> e

let rec iter f e =
  f e;
  match e with
  | Int _ | Float _ | Bool _ | Var _ -> ()
  | Bin (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      iter f a;
      iter f b
  | Not a | Cast (_, a) -> iter f a
  | Select (c, a, b) ->
      iter f c;
      iter f a;
      iter f b
  | Load (_, idx) | Call (_, _, idx) | Ptr (_, idx) -> List.iter (iter f) idx

let free_vars e =
  let acc = ref Var.Set.empty in
  iter (function Var v -> acc := Var.Set.add v !acc | _ -> ()) e;
  !acc

let loaded_buffers e =
  let acc = ref Buffer.Set.empty in
  iter
    (function
      | Load (b, _) | Ptr (b, _) -> acc := Buffer.Set.add b !acc | _ -> ())
    e;
  !acc

let uses_var v e = Var.Set.mem v (free_vars e)

let as_const_int = function Int i -> Some i | _ -> None

let is_const_int e c = match e with Int i -> i = c | _ -> false

(** Structural equality up to a variable correspondence supplied by [veq]
    (used by tensorize's pattern matching). *)
let rec equal_with veq a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float (x, dx), Float (y, dy) -> Float.equal x y && Dtype.equal dx dy
  | Bool x, Bool y -> x = y
  | Var x, Var y -> veq x y
  | Bin (o1, a1, b1), Bin (o2, a2, b2) ->
      o1 = o2 && equal_with veq a1 a2 && equal_with veq b1 b2
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) ->
      o1 = o2 && equal_with veq a1 a2 && equal_with veq b1 b2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
      equal_with veq a1 a2 && equal_with veq b1 b2
  | Not a1, Not a2 -> equal_with veq a1 a2
  | Select (c1, a1, b1), Select (c2, a2, b2) ->
      equal_with veq c1 c2 && equal_with veq a1 a2 && equal_with veq b1 b2
  | Cast (d1, a1), Cast (d2, a2) -> Dtype.equal d1 d2 && equal_with veq a1 a2
  | Load (b1, i1), Load (b2, i2) | Ptr (b1, i1), Ptr (b2, i2) ->
      Buffer.equal b1 b2
      && List.length i1 = List.length i2
      && List.for_all2 (equal_with veq) i1 i2
  | Call (n1, d1, a1), Call (n2, d2, a2) ->
      String.equal n1 n2 && Dtype.equal d1 d2
      && List.length a1 = List.length a2
      && List.for_all2 (equal_with veq) a1 a2
  | _ -> false

(* Physical identity as the fast path: shared subtrees (rebuilds that keep
   untouched children, interned values) short-circuit. *)
let equal a b = a == b || equal_with Var.equal a b

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "//"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"

let cmpop_symbol = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Precedence-aware printing keeps index expressions readable in dumps. *)
let rec pp_prec prec ppf e =
  let paren p body = if prec > p then Fmt.pf ppf "(%t)" body else body ppf in
  match e with
  | Int i -> Fmt.int ppf i
  | Float (f, dt) ->
      if Dtype.equal dt Dtype.F32 then Fmt.pf ppf "%g" f
      else Fmt.pf ppf "%s(%g)" (Dtype.to_string dt) f
  | Bool b -> Fmt.bool ppf b
  | Var v -> Var.pp ppf v
  | Bin ((Min | Max) as op, a, b) ->
      Fmt.pf ppf "%s(%a, %a)" (binop_symbol op) (pp_prec 0) a (pp_prec 0) b
  | Bin (op, a, b) ->
      let p = match op with Add | Sub -> 4 | _ -> 5 in
      paren p (fun ppf ->
          Fmt.pf ppf "%a %s %a" (pp_prec p) a (binop_symbol op) (pp_prec (p + 1)) b)
  | Cmp (op, a, b) ->
      paren 3 (fun ppf ->
          Fmt.pf ppf "%a %s %a" (pp_prec 4) a (cmpop_symbol op) (pp_prec 4) b)
  | And (a, b) ->
      paren 2 (fun ppf -> Fmt.pf ppf "%a and %a" (pp_prec 2) a (pp_prec 3) b)
  | Or (a, b) ->
      paren 1 (fun ppf -> Fmt.pf ppf "%a or %a" (pp_prec 1) a (pp_prec 2) b)
  | Not a -> paren 6 (fun ppf -> Fmt.pf ppf "not %a" (pp_prec 6) a)
  | Select (c, a, b) ->
      Fmt.pf ppf "select(%a, %a, %a)" (pp_prec 0) c (pp_prec 0) a (pp_prec 0) b
  | Cast (dt, a) -> Fmt.pf ppf "%s(%a)" (Dtype.to_string dt) (pp_prec 0) a
  | Load (buf, idx) ->
      Fmt.pf ppf "%a[%a]" Buffer.pp buf Fmt.(list ~sep:(any ", ") (pp_prec 0)) idx
  | Call (name, _, args) ->
      Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") (pp_prec 0)) args
  | Ptr (buf, idx) ->
      Fmt.pf ppf "&%a[%a]" Buffer.pp buf Fmt.(list ~sep:(any ", ") (pp_prec 0)) idx

let pp = pp_prec 0
let to_string e = Fmt.str "%a" pp e
