(** Cheap 64-bit structural fingerprints for IR values.

    A fingerprint is a deterministic function of program {e structure}:
    variables are hashed by display name and dtype, buffers by name, dtype,
    shape and scope — never by their per-process [id]s, which depend on
    allocation order and would differ between runs (and between [TIR_JOBS]
    settings). Two structurally identical programs therefore fingerprint
    identically in every process, which is what lets fingerprints replace
    MD5-of-printed-program as memo and database keys: they are exactly as
    injective as the printed script (which also shows names, not ids) at a
    fraction of the cost — one tree walk, no string building, no MD5.

    Tags are enumerated explicitly rather than via [Hashtbl.hash] so the
    scheme is stable across compiler versions; a collision has the same
    consequence as an MD5 collision had before (a wrong memo hit), with
    2^-64 per-pair probability. *)

type t = int64

let equal : t -> t -> bool = Int64.equal
let compare : t -> t -> int = Int64.compare
let to_hex (h : t) = Printf.sprintf "%016Lx" h

(* splitmix64 finalizer: full avalanche in a handful of ALU ops. *)
let mix (h : t) : t =
  let h = Int64.logxor h (Int64.shift_right_logical h 30) in
  let h = Int64.mul h 0xbf58476d1ce4e5b9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 27) in
  let h = Int64.mul h 0x94d049bb133111ebL in
  Int64.logxor h (Int64.shift_right_logical h 31)

(** Order-dependent combination: [combine a b <> combine b a]. *)
let combine (a : t) (b : t) : t = mix (Int64.add (Int64.mul a 0x9e3779b97f4a7c15L) b)

let of_int (i : int) : t = mix (Int64.of_int i)

(** FNV-1a over the bytes, finalized. *)
let of_string (s : string) : t =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  mix !h

let of_bool b : t = if b then 0x2bL else 0x2cL

let fold_list f init xs = List.fold_left (fun h x -> combine h (f x)) init xs

(* ------------------------------------------------------------------ *)
(* Leaves                                                              *)
(* ------------------------------------------------------------------ *)

let dtype_fp (dt : Dtype.t) : t =
  match dt with
  | Dtype.F16 -> 0x11L
  | Dtype.F32 -> 0x12L
  | Dtype.I8 -> 0x13L
  | Dtype.I32 -> 0x14L
  | Dtype.Bool -> 0x15L
  | Dtype.Int -> 0x16L

let var_fp (v : Var.t) : t = combine (of_string v.Var.name) (dtype_fp v.Var.dtype)

let buffer_fp (b : Buffer.t) : t =
  let h = combine (of_string b.Buffer.name) (dtype_fp b.Buffer.dtype) in
  let h = fold_list of_int h b.Buffer.shape in
  combine h (of_string b.Buffer.scope)

let binop_fp (op : Expr.binop) : t =
  match op with
  | Expr.Add -> 0x21L
  | Expr.Sub -> 0x22L
  | Expr.Mul -> 0x23L
  | Expr.Div -> 0x24L
  | Expr.Mod -> 0x25L
  | Expr.Min -> 0x26L
  | Expr.Max -> 0x27L

let cmpop_fp (op : Expr.cmpop) : t =
  match op with
  | Expr.Eq -> 0x31L
  | Expr.Ne -> 0x32L
  | Expr.Lt -> 0x33L
  | Expr.Le -> 0x34L
  | Expr.Gt -> 0x35L
  | Expr.Ge -> 0x36L

let pairs_fp (kvs : (string * string) list) : t =
  fold_list (fun (k, v) -> combine (of_string k) (of_string v)) 0x41L kvs

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec expr (e : Expr.t) : t =
  match e with
  | Expr.Int i -> combine 0x51L (Int64.of_int i)
  | Expr.Float (f, dt) -> combine 0x52L (combine (Int64.bits_of_float f) (dtype_fp dt))
  | Expr.Bool b -> combine 0x53L (of_bool b)
  | Expr.Var v -> combine 0x54L (var_fp v)
  | Expr.Bin (op, a, b) -> combine (combine 0x55L (binop_fp op)) (combine (expr a) (expr b))
  | Expr.Cmp (op, a, b) -> combine (combine 0x56L (cmpop_fp op)) (combine (expr a) (expr b))
  | Expr.And (a, b) -> combine 0x57L (combine (expr a) (expr b))
  | Expr.Or (a, b) -> combine 0x58L (combine (expr a) (expr b))
  | Expr.Not a -> combine 0x59L (expr a)
  | Expr.Select (c, a, b) -> combine 0x5aL (combine (expr c) (combine (expr a) (expr b)))
  | Expr.Cast (dt, a) -> combine (combine 0x5bL (dtype_fp dt)) (expr a)
  | Expr.Load (b, idx) -> fold_list expr (combine 0x5cL (buffer_fp b)) idx
  | Expr.Call (name, dt, args) ->
      fold_list expr (combine (combine 0x5dL (of_string name)) (dtype_fp dt)) args
  | Expr.Ptr (b, idx) -> fold_list expr (combine 0x5eL (buffer_fp b)) idx

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let for_kind_fp (k : Stmt.for_kind) : t =
  match k with
  | Stmt.Serial -> 0x61L
  | Stmt.Parallel -> 0x62L
  | Stmt.Vectorized -> 0x63L
  | Stmt.Unrolled -> 0x64L
  | Stmt.Thread_binding axis -> combine 0x65L (of_string axis)

let itype_fp (it : Stmt.iter_type) : t =
  match it with Stmt.Spatial -> 0x71L | Stmt.Reduce -> 0x72L | Stmt.Opaque -> 0x73L

let iter_var_fp (iv : Stmt.iter_var) : t =
  combine (var_fp iv.Stmt.var) (combine (of_int iv.Stmt.extent) (itype_fp iv.Stmt.itype))

let region_fp (r : Stmt.buffer_region) : t =
  fold_list
    (fun (lo, ext) -> combine (expr lo) (of_int ext))
    (combine 0x81L (buffer_fp r.Stmt.buffer))
    r.Stmt.region

let rec stmt (s : Stmt.t) : t =
  match s with
  | Stmt.For r ->
      let h = combine 0x91L (var_fp r.Stmt.loop_var) in
      let h = combine h (of_int r.Stmt.extent) in
      let h = combine h (for_kind_fp r.Stmt.kind) in
      let h = combine h (pairs_fp r.Stmt.annotations) in
      combine h (stmt r.Stmt.body)
  | Stmt.Block br ->
      let h = fold_list expr 0x92L br.Stmt.iter_values in
      let h = combine h (expr br.Stmt.predicate) in
      combine h (block_fp br.Stmt.block)
  | Stmt.Store (b, idx, v) ->
      combine (fold_list expr (combine 0x93L (buffer_fp b)) idx) (expr v)
  | Stmt.Seq ss -> fold_list stmt 0x94L ss
  | Stmt.If (c, a, b) ->
      let h = combine 0x95L (expr c) in
      let h = combine h (stmt a) in
      combine h (match b with None -> 0x96L | Some b -> stmt b)
  | Stmt.Eval e -> combine 0x97L (expr e)

and block_fp (b : Stmt.block) : t =
  let h = combine 0xa1L (of_string b.Stmt.name) in
  let h = fold_list iter_var_fp h b.Stmt.iter_vars in
  let h = fold_list region_fp h b.Stmt.reads in
  let h = fold_list region_fp h b.Stmt.writes in
  let h = combine h (match b.Stmt.init with None -> 0xa2L | Some i -> stmt i) in
  let h = fold_list buffer_fp h b.Stmt.alloc in
  let h = combine h (pairs_fp b.Stmt.annotations) in
  combine h (stmt b.Stmt.body)

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)
(* ------------------------------------------------------------------ *)

let func_uncached (f : Primfunc.t) : t =
  let h = combine 0xb1L (of_string f.Primfunc.name) in
  let h = fold_list buffer_fp h f.Primfunc.params in
  let h = combine h (pairs_fp f.Primfunc.attrs) in
  combine h (stmt f.Primfunc.body)

(* Per-domain physical-identity cache: searches fingerprint the same
   (immutable) function value repeatedly — once per memo probe — and a
   sketch's base function is a single shared value across every candidate.
   [Hashtbl.hash] is depth-limited, so bucketing stays cheap on big trees;
   [(==)] resolves the bucket. *)
module FuncTbl = Hashtbl.Make (struct
  type t = Primfunc.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let func_cache : t FuncTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> FuncTbl.create 256)

let func_cache_cap = 2048

let func (f : Primfunc.t) : t =
  let tbl = Domain.DLS.get func_cache in
  match FuncTbl.find_opt tbl f with
  | Some h -> h
  | None ->
      let h = func_uncached f in
      if FuncTbl.length tbl >= func_cache_cap then FuncTbl.reset tbl;
      FuncTbl.add tbl f h;
      h
