(** Statements: loop nests, blocks, buffer stores.

    The [block] mirrors the paper's Figure 5: iterator variables with
    domains and kinds (spatial / reduce), read and write buffer regions, an
    optional reduction-initialization statement, allocated sub-buffers, and
    the body. A [Block] statement is a *block realize*: it binds each block
    iterator to an expression over the surrounding loop variables. *)

type for_kind =
  | Serial
  | Parallel
  | Vectorized
  | Unrolled
  | Thread_binding of string
      (** GPU thread axes, e.g. ["blockIdx.x"], ["threadIdx.y"] *)

type iter_type = Spatial | Reduce | Opaque

type iter_var = { var : Var.t; extent : int; itype : iter_type }

(** Per-dimension [(min, extent)]; extents are constant (static shapes). *)
type buffer_region = { buffer : Buffer.t; region : (Expr.t * int) list }

type t =
  | For of for_
  | Block of block_realize
  | Store of Buffer.t * Expr.t list * Expr.t
  | Seq of t list
  | If of Expr.t * t * t option
  | Eval of Expr.t

and for_ = {
  loop_var : Var.t;
  extent : int;
  kind : for_kind;
  body : t;
  annotations : (string * string) list;
}

and block_realize = {
  iter_values : Expr.t list;  (** one binding per [block.iter_vars] *)
  predicate : Expr.t;  (** instance guard (padding / non-divisible splits) *)
  block : block;
}

and block = {
  name : string;  (** unique within a function *)
  iter_vars : iter_var list;
  reads : buffer_region list;
  writes : buffer_region list;
  init : t option;  (** runs on the first reduction instance *)
  alloc : Buffer.t list;  (** buffers scoped to this block *)
  annotations : (string * string) list;
  body : t;
}

val iter_var : ?itype:iter_type -> Var.t -> int -> iter_var
val for_kind_to_string : for_kind -> string
val iter_type_to_string : iter_type -> string

(** Flattens nested [Seq] and drops empties; single statements unwrap. *)
val seq : t list -> t

val for_ :
  ?kind:for_kind -> ?annotations:(string * string) list -> Var.t -> int -> t -> t

val block_realize : ?predicate:Expr.t -> Expr.t list -> block -> t

val make_block :
  ?init:t option ->
  ?alloc:Buffer.t list ->
  ?annotations:(string * string) list ->
  name:string ->
  iter_vars:iter_var list ->
  reads:buffer_region list ->
  writes:buffer_region list ->
  t ->
  block

(** Structural equality (expressions via [Expr.equal], variables and
    buffers by id); physical identity is a fast path, so hash-consed
    subtrees compare in O(1). *)
val equal : t -> t -> bool

(** Recursively canonicalize a statement tree in the per-domain intern
    tables (structure-preserving). Two structurally equal trees
    canonicalized on the same domain are physically equal. *)
val hashcons : t -> t

(** Rebuild with [f] on each direct child statement (enters block init and
    body). *)
val map_children : (t -> t) -> t -> t

(** Rebuild with [fe] on every expression position (indices, values,
    predicates, bindings, region mins). *)
val map_exprs : (Expr.t -> Expr.t) -> t -> t

(** Substitute free variables; loop variables and block iterators are
    binders and shadow the substitution. *)
val subst : (Var.t -> Expr.t option) -> t -> t

val subst_map : Expr.t Var.Map.t -> t -> t
val replace_buffer : from:Buffer.t -> to_:Buffer.t -> t -> t

(** Pre-order visit of every statement, entering block bodies and inits. *)
val iter : (t -> unit) -> t -> unit

val iter_exprs : (Expr.t -> unit) -> t -> unit
val collect_blocks : t -> block_realize list
val find_block : t -> string -> block_realize option
val stored_buffers : t -> Buffer.Set.t
val loaded_buffers : t -> Buffer.Set.t

(** Binding value of a block iterator within a realize. *)
val binding_of : block_realize -> Var.t -> Expr.t option
