(** Scalar expressions (TensorIR's PrimExpr).

    Smart constructors perform local constant folding and unit-element
    elimination; the full rewriting simplifier lives in
    [Tir_arith.Simplify]. *)

type binop = Add | Sub | Mul | Div  (** floor division *) | Mod  (** floor modulo *) | Min | Max

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Int of int
  | Float of float * Dtype.t
  | Bool of bool
  | Var of Var.t
  | Bin of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Select of t * t * t  (** [Select (cond, then_, else_)]; lazy in branches *)
  | Cast of Dtype.t * t
  | Load of Buffer.t * t list  (** buffer element read *)
  | Call of string * Dtype.t * t list  (** opaque intrinsic call *)
  | Ptr of Buffer.t * t list
      (** pointer to a buffer element, passed to low-level tensor
          intrinsics *)

val zero : t
val one : t
val fzero : Dtype.t -> t

(** Host-level floor division / modulo (the semantics of [Div]/[Mod]). *)
val floordiv : int -> int -> int

val floormod : int -> int -> int

(** Result type of an expression ([Int] wins only against [Int]). *)
val dtype : t -> Dtype.t

val eval_int_binop : binop -> int -> int -> int
val eval_float_binop : binop -> float -> float -> float
val eval_cmp_int : cmpop -> int -> int -> bool

(** {2 Smart constructors} *)

val bin : binop -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val mod_ : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val cmp : cmpop -> t -> t -> t
val eq : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val ge : t -> t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val not_ : t -> t
val cast : Dtype.t -> t -> t
val var : Var.t -> t
val int : int -> t
val float : ?dtype:Dtype.t -> float -> t
val load : Buffer.t -> t list -> t
val select : t -> t -> t -> t

(** {2 Hash-consing}

    Smart constructors intern the nodes they build in a per-domain table,
    so structurally equal expressions built through them on one domain are
    physically equal and [equal] short-circuits on [(==)]. *)

(** Intern one node whose children are already canonical. *)
val hashcons : t -> t

(** Recursively canonicalize an arbitrary tree (structure-preserving: no
    folding is applied). After [intern], structural equality of two interned
    trees coincides with physical equality on the same domain. *)
val intern : t -> t

(** Infix operators for index arithmetic. *)
module Infix : sig
  val ( +: ) : t -> t -> t
  val ( -: ) : t -> t -> t
  val ( *: ) : t -> t -> t
  val ( /: ) : t -> t -> t
  val ( %: ) : t -> t -> t
  val ( =: ) : t -> t -> t
  val ( <: ) : t -> t -> t
  val ( <=: ) : t -> t -> t
end

(** {2 Traversal and rewriting} *)

(** Rebuild with [f] applied to each direct sub-expression (re-runs smart
    constructors). *)
val map_children : (t -> t) -> t -> t

(** Capture-free substitution of variables. *)
val subst : (Var.t -> t option) -> t -> t

val subst_map : t Var.Map.t -> t -> t

(** Replace loads/pointers of one buffer by another (same indices). *)
val replace_buffer : from:Buffer.t -> to_:Buffer.t -> t -> t

(** Pre-order visit of every sub-expression. *)
val iter : (t -> unit) -> t -> unit

val free_vars : t -> Var.Set.t
val loaded_buffers : t -> Buffer.Set.t
val uses_var : Var.t -> t -> bool
val as_const_int : t -> int option
val is_const_int : t -> int -> bool

(** Structural equality up to a variable correspondence (tensorize's
    pattern matching). *)
val equal_with : (Var.t -> Var.t -> bool) -> t -> t -> bool

val equal : t -> t -> bool
val binop_symbol : binop -> string
val cmpop_symbol : cmpop -> string

(** Precedence-aware printing in the script dialect. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
