(** Variables with globally unique identities.

    Equality is by [id], never by name: schedule primitives freely create
    loop variables that share a display name ([i0], [i1], ...) and the
    zipper machinery locates loops by variable identity. *)

type t = { id : int; name : string; dtype : Dtype.t }

(* Atomic: loop variables are created inside the auto-scheduler's parallel
   candidate-evaluation regions (sketch apply runs on pool domains). *)
let counter = Atomic.make 0

let fresh ?(dtype = Dtype.Int) name =
  { id = Atomic.fetch_and_add counter 1 + 1; name; dtype }

(** [rename v name] keeps the identity but changes the display name. *)
let rename v name = { v with name }

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash a = a.id
let pp ppf v = Fmt.string ppf v.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
