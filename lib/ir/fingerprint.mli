(** Cheap 64-bit structural fingerprints for IR values.

    Fingerprints hash program structure only — variable {e names} and
    dtypes, buffer names/dtypes/shapes/scopes — never per-process ids, so
    structurally identical programs fingerprint identically in every
    process and at every [TIR_JOBS]. They are exactly as injective as the
    printed script (which also shows names, not ids) and replace
    MD5-of-printed-program as memo, space-id and database-replay keys at a
    fraction of the cost: one tree walk, no string building, no MD5. *)

type t = int64

val equal : t -> t -> bool
val compare : t -> t -> int

(** 16 lowercase hex digits; drop-in replacement for [Digest.to_hex] in
    composite string keys. *)
val to_hex : t -> string

(** FNV-1a over the bytes, finalized with a splitmix64 mixer. *)
val of_string : string -> t

val of_int : int -> t

(** Order-dependent combination, suitable for rolling hashes over
    instruction streams: [combine a b <> combine b a]. *)
val combine : t -> t -> t

val expr : Expr.t -> t
val stmt : Stmt.t -> t

(** Fingerprint of a whole function (name, params, attrs, body). Cached
    per-domain by physical identity — fingerprinting the same function
    value repeatedly is O(1). *)
val func : Primfunc.t -> t
