(** Statements: loop nests, blocks, buffer stores.

    The [block] mirrors the paper's Figure 5: iterator variables with
    domains and kinds (spatial / reduce), read and write buffer regions, an
    optional reduction-initialization statement, allocated sub-buffers, and
    an opaque body. A [Block] statement is a *block realize*: it binds each
    block iterator to an expression over the surrounding loop variables. *)

type for_kind =
  | Serial
  | Parallel
  | Vectorized
  | Unrolled
  | Thread_binding of string
      (** GPU-style thread axes, e.g. ["blockIdx.x"], ["threadIdx.y"] *)

type iter_type = Spatial | Reduce | Opaque

type iter_var = { var : Var.t; extent : int; itype : iter_type }

(** Per-dimension [(min, extent)] with a constant extent; static shapes make
    constant extents sufficient and keep cover checks exact. *)
type buffer_region = { buffer : Buffer.t; region : (Expr.t * int) list }

type t =
  | For of for_
  | Block of block_realize
  | Store of Buffer.t * Expr.t list * Expr.t
  | Seq of t list
  | If of Expr.t * t * t option
  | Eval of Expr.t

and for_ = {
  loop_var : Var.t;
  extent : int;
  kind : for_kind;
  body : t;
  annotations : (string * string) list;
}

and block_realize = { iter_values : Expr.t list; predicate : Expr.t; block : block }

and block = {
  name : string;
  iter_vars : iter_var list;
  reads : buffer_region list;
  writes : buffer_region list;
  init : t option;
  alloc : Buffer.t list;
  annotations : (string * string) list;
  body : t;
}

let iter_var ?(itype = Spatial) var extent = { var; extent; itype }

let for_kind_to_string = function
  | Serial -> "serial"
  | Parallel -> "parallel"
  | Vectorized -> "vectorized"
  | Unrolled -> "unroll"
  | Thread_binding th -> th

let iter_type_to_string = function
  | Spatial -> "spatial"
  | Reduce -> "reduce"
  | Opaque -> "opaque"

(** Sequence smart constructor: flattens nested [Seq] and drops empties. *)
let seq stmts =
  let rec flatten acc = function
    | [] -> List.rev acc
    | Seq ss :: rest -> flatten acc (ss @ rest)
    | s :: rest -> flatten (s :: acc) rest
  in
  match flatten [] stmts with [ s ] -> s | ss -> Seq ss

let for_ ?(kind = Serial) ?(annotations = []) loop_var extent body =
  For { loop_var; extent; kind; body; annotations }

let block_realize ?(predicate = Expr.Bool true) iter_values block =
  Block { iter_values; predicate; block }

let make_block ?(init = None) ?(alloc = []) ?(annotations = []) ~name ~iter_vars
    ~reads ~writes body =
  { name; iter_vars; reads; writes; init; alloc; annotations; body }

(* ------------------------------------------------------------------ *)
(* Structural equality and hash-consing                                *)
(* ------------------------------------------------------------------ *)

let list_equal eq a b = List.length a = List.length b && List.for_all2 eq a b

let region_equal r1 r2 =
  Buffer.equal r1.buffer r2.buffer
  && list_equal
       (fun (m1, e1) (m2, e2) -> Expr.equal m1 m2 && e1 = e2)
       r1.region r2.region

let iter_var_equal i1 i2 =
  Var.equal i1.var i2.var && i1.extent = i2.extent && i1.itype = i2.itype

(** Structural equality; physical identity is a fast path, so hash-consed
    subtrees compare in O(1). *)
let rec equal (a : t) (b : t) =
  a == b
  ||
  match (a, b) with
  | For r1, For r2 ->
      Var.equal r1.loop_var r2.loop_var
      && r1.extent = r2.extent && r1.kind = r2.kind
      && r1.annotations = r2.annotations && equal r1.body r2.body
  | Block b1, Block b2 ->
      let k1 = b1.block and k2 = b2.block in
      list_equal Expr.equal b1.iter_values b2.iter_values
      && Expr.equal b1.predicate b2.predicate
      && String.equal k1.name k2.name
      && list_equal iter_var_equal k1.iter_vars k2.iter_vars
      && list_equal region_equal k1.reads k2.reads
      && list_equal region_equal k1.writes k2.writes
      && Option.equal equal k1.init k2.init
      && list_equal Buffer.equal k1.alloc k2.alloc
      && k1.annotations = k2.annotations
      && equal k1.body k2.body
  | Store (b1, i1, v1), Store (b2, i2, v2) ->
      Buffer.equal b1 b2 && list_equal Expr.equal i1 i2 && Expr.equal v1 v2
  | Seq s1, Seq s2 -> list_equal equal s1 s2
  | If (c1, t1, e1), If (c2, t2, e2) ->
      Expr.equal c1 c2 && equal t1 t2 && Option.equal equal e1 e2
  | Eval e1, Eval e2 -> Expr.equal e1 e2
  | _ -> false

(* Shallow equality for the intern table: child statements and (interned)
   child expressions by physical identity, leaf payloads by value. As with
   [Expr], a node whose children are canonical is identified with its
   structural class; anything else just misses sharing. *)
let phys_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x == y
  | _ -> false

let shallow_equal (x : t) (y : t) =
  match (x, y) with
  | For r1, For r2 ->
      r1.body == r2.body && Var.equal r1.loop_var r2.loop_var
      && r1.extent = r2.extent && r1.kind = r2.kind
      && r1.annotations = r2.annotations
  | Block b1, Block b2 ->
      let k1 = b1.block and k2 = b2.block in
      k1.body == k2.body
      && phys_opt_equal k1.init k2.init
      && list_equal ( == ) b1.iter_values b2.iter_values
      && b1.predicate == b2.predicate
      && String.equal k1.name k2.name
      && list_equal iter_var_equal k1.iter_vars k2.iter_vars
      && list_equal
           (fun r1 r2 ->
             Buffer.equal r1.buffer r2.buffer
             && list_equal (fun (m1, e1) (m2, e2) -> m1 == m2 && e1 = e2) r1.region
                  r2.region)
           k1.reads k2.reads
      && list_equal
           (fun r1 r2 ->
             Buffer.equal r1.buffer r2.buffer
             && list_equal (fun (m1, e1) (m2, e2) -> m1 == m2 && e1 = e2) r1.region
                  r2.region)
           k1.writes k2.writes
      && list_equal Buffer.equal k1.alloc k2.alloc
      && k1.annotations = k2.annotations
  | Store (b1, i1, v1), Store (b2, i2, v2) ->
      Buffer.equal b1 b2 && list_equal ( == ) i1 i2 && v1 == v2
  | Seq s1, Seq s2 -> list_equal ( == ) s1 s2
  | If (c1, t1, e1), If (c2, t2, e2) ->
      c1 == c2 && t1 == t2 && phys_opt_equal e1 e2
  | Eval e1, Eval e2 -> e1 == e2
  | _ -> false

module Intern = Hashtbl.Make (struct
  type nonrec t = t

  let equal = shallow_equal
  let hash = Hashtbl.hash
end)

let intern_cap = 1 lsl 16

let intern_tbl : t Intern.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Intern.create 1024)

let intern_node (s : t) : t =
  let tbl = Domain.DLS.get intern_tbl in
  match Intern.find_opt tbl s with
  | Some c -> c
  | None ->
      if Intern.length tbl >= intern_cap then Intern.reset tbl;
      Intern.add tbl s s;
      s

let region_intern r =
  { r with region = List.map (fun (mn, ext) -> (Expr.intern mn, ext)) r.region }

(** Recursively canonicalize a statement tree (structure-preserving).
    After [hashcons], structural equality of two canonicalized trees
    coincides with physical equality on the same domain. *)
let rec hashcons (s : t) : t =
  let s =
    match s with
    | For r -> For { r with body = hashcons r.body }
    | Block br ->
        let k = br.block in
        Block
          {
            iter_values = List.map Expr.intern br.iter_values;
            predicate = Expr.intern br.predicate;
            block =
              {
                k with
                reads = List.map region_intern k.reads;
                writes = List.map region_intern k.writes;
                init = Option.map hashcons k.init;
                body = hashcons k.body;
              };
          }
    | Store (b, idx, v) -> Store (b, List.map Expr.intern idx, Expr.intern v)
    | Seq ss -> Seq (List.map hashcons ss)
    | If (c, t, e) -> If (Expr.intern c, hashcons t, Option.map hashcons e)
    | Eval e -> Eval (Expr.intern e)
  in
  intern_node s

(** [map_children f s] rebuilds [s] with [f] applied to each direct child
    statement (entering blocks' init and body). *)
let map_children f s =
  match s with
  | For r -> For { r with body = f r.body }
  | Block br ->
      let block = br.block in
      Block
        {
          br with
          block = { block with body = f block.body; init = Option.map f block.init };
        }
  | Store _ | Eval _ -> s
  | Seq ss -> seq (List.map f ss)
  | If (c, t, e) -> If (c, f t, Option.map f e)

let rec map_exprs fe s =
  match s with
  | For r -> For { r with body = map_exprs fe r.body }
  | Block br ->
      let b = br.block in
      let region_map { buffer; region } =
        { buffer; region = List.map (fun (mn, ext) -> (fe mn, ext)) region }
      in
      Block
        {
          iter_values = List.map fe br.iter_values;
          predicate = fe br.predicate;
          block =
            {
              b with
              reads = List.map region_map b.reads;
              writes = List.map region_map b.writes;
              init = Option.map (map_exprs fe) b.init;
              body = map_exprs fe b.body;
            };
        }
  | Store (buf, idx, v) -> Store (buf, List.map fe idx, fe v)
  | Seq ss -> seq (List.map (map_exprs fe) ss)
  | If (c, t, e) -> If (fe c, map_exprs fe t, Option.map (map_exprs fe) e)
  | Eval e -> Eval (fe e)

(** Substitute free variables in every expression position. Block iterator
    variables are binders, so they shadow outer substitutions. *)
let rec subst lookup s =
  match s with
  | Block br ->
      let b = br.block in
      let shadowed v =
        if List.exists (fun iv -> Var.equal iv.var v) b.iter_vars then None
        else lookup v
      in
      let fe_outer = Expr.subst lookup in
      let region_map { buffer; region } =
        (* Region mins refer to block iter vars, keep inner scoping. *)
        { buffer; region = List.map (fun (mn, ext) -> (Expr.subst shadowed mn, ext)) region }
      in
      Block
        {
          iter_values = List.map fe_outer br.iter_values;
          predicate = fe_outer br.predicate;
          block =
            {
              b with
              reads = List.map region_map b.reads;
              writes = List.map region_map b.writes;
              init = Option.map (subst shadowed) b.init;
              body = subst shadowed b.body;
            };
        }
  | For r ->
      let shadowed v = if Var.equal v r.loop_var then None else lookup v in
      For { r with body = subst shadowed r.body }
  | _ -> map_exprs (Expr.subst lookup) (map_children (subst lookup) s)

let subst_map map s = subst (fun v -> Var.Map.find_opt v map) s

let rec replace_buffer ~from ~to_ s =
  let fe = Expr.replace_buffer ~from ~to_ in
  let swap b = if Buffer.equal b from then to_ else b in
  let s = map_exprs fe (map_children (replace_buffer ~from ~to_) s) in
  match s with
  | Store (b, idx, v) -> Store (swap b, idx, v)
  | Block br ->
      let bl = br.block in
      let region_map r = { r with buffer = swap r.buffer } in
      Block
        {
          br with
          block =
            {
              bl with
              reads = List.map region_map bl.reads;
              writes = List.map region_map bl.writes;
            };
        }
  | _ -> s

(** Depth-first visit of every statement (pre-order), entering block bodies
    and init statements. *)
let rec iter f s =
  f s;
  match s with
  | For r -> iter f r.body
  | Block br ->
      Option.iter (iter f) br.block.init;
      iter f br.block.body
  | Seq ss -> List.iter (iter f) ss
  | If (_, t, e) ->
      iter f t;
      Option.iter (iter f) e
  | Store _ | Eval _ -> ()

let iter_exprs f s =
  let visit_region r = List.iter (fun (mn, _) -> f mn) r.region in
  iter
    (fun s ->
      match s with
      | Store (_, idx, v) ->
          List.iter f idx;
          f v
      | Eval e -> f e
      | If (c, _, _) -> f c
      | For _ | Seq _ -> ()
      | Block br ->
          List.iter f br.iter_values;
          f br.predicate;
          List.iter visit_region br.block.reads;
          List.iter visit_region br.block.writes)
    s

(** All blocks in [s], pre-order. *)
let collect_blocks s =
  let acc = ref [] in
  iter (function Block br -> acc := br :: !acc | _ -> ()) s;
  List.rev !acc

let find_block s name =
  List.find_opt (fun br -> String.equal br.block.name name) (collect_blocks s)

(** Buffers written (via [Store]) anywhere in [s]. *)
let stored_buffers s =
  let acc = ref Buffer.Set.empty in
  iter (function Store (b, _, _) -> acc := Buffer.Set.add b !acc | _ -> ()) s;
  !acc

(** Buffers loaded in any expression position of [s]. *)
let loaded_buffers s =
  let acc = ref Buffer.Set.empty in
  let visit e = acc := Buffer.Set.union (Expr.loaded_buffers e) !acc in
  iter
    (function
      | Store (_, idx, v) ->
          List.iter visit idx;
          visit v
      | Eval e -> visit e
      | If (c, _, _) -> visit c
      | _ -> ())
    s;
  !acc

(** Find the binding value of a block iterator by variable. *)
let binding_of (br : block_realize) (v : Var.t) =
  let rec go ivs vals =
    match (ivs, vals) with
    | iv :: _, value :: _ when Var.equal iv.var v -> Some value
    | _ :: ivs, _ :: vals -> go ivs vals
    | _ -> None
  in
  go br.block.iter_vars br.iter_values
