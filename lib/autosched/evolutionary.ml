(** Evolutionary search over tensorized program sketches (paper §4.4).

    The search itself lives in {!Engine} — an explicit state machine where
    one [Engine.step] runs one generation (proposal fan-out, evaluation,
    ranked measurement, cost-model retrain, metrics/journal/checkpoint
    flush). This module re-exports the engine's types under their
    historical names and provides [search], the run-to-completion driver:
    it loops [Engine.step] until the trial budget is reached or the space
    is exhausted.

    All determinism properties are the engine's: generation randomness
    derives from [(seed, gen)] only, pool fan-outs reduce in slot order,
    and evaluation/measurement go through the process-wide memo in
    [Eval] — so [TIR_JOBS=1] and [TIR_JOBS=n] return the same best
    program, the same latencies, and the same trial statistics for a
    fixed seed, no matter how many engines share the pool. *)

open Tir_ir

type measured = Engine.measured = {
  sketch_name : string;
  base : string;
  decisions : Space.decisions;
  trace : Tir_sched.Trace.t;
  func : Primfunc.t;
  latency_us : float;
}

type stats = Engine.stats = {
  mutable trials : int;
  mutable proposed : int;
  mutable invalid : int;
  mutable unsound : int;
  mutable inapplicable : int;
  mutable unmeasurable : int;
  mutable best_curve : (int * float) list;
  mutable profiling_us : float;
  mutable cache_hits : int;
  mutable cache_lookups : int;
}

let new_stats = Engine.new_stats
let cache_hit_rate = Engine.cache_hit_rate

type result = Engine.result = { best : measured option; stats : stats }

type checkpoint = Engine.checkpoint = {
  on_seen : gen:int -> string list -> unit;
  on_measured : gen:int -> measured -> unit;
  on_generation : gen:int -> stats -> best_us:float -> unit;
}

type resume = Engine.resume = {
  r_gen : int;
  r_seen : string list;
  r_measured : measured list;
  r_stats : stats;
}

let measurement_overhead_us = Engine.measurement_overhead_us
let measurement_runs = Engine.measurement_runs
let measurement_cap_us = Engine.measurement_cap_us

let search ?population ?measure_batch ?use_cost_model ?evolve ?model ?group
    ?pool ?journal ?retry ?checkpoint ?resume ~seed ~target ~trials
    (sketches : Sketch.t list) : result =
  let e =
    Engine.create ?population ?measure_batch ?use_cost_model ?evolve ?model
      ?group ?pool ?journal ?retry ?checkpoint ?resume ~seed ~target ~trials
      sketches
  in
  let rec drive () =
    match Engine.step e with
    | _, Engine.Stepped _ -> drive ()
    | _, (Engine.Exhausted _ | Engine.Done) -> Engine.result e
  in
  drive ()
