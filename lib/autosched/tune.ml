(** Tuning driver: the end-to-end auto-scheduler of section 4.

    [tune] takes a workload and a target, generates tensorization
    candidates against the target's intrinsics (§4.2), builds program
    sketches (§4.3), and runs the evolutionary search (§4.4). The result
    carries the best program, its simulated latency, and search statistics
    (used by the Table 1 tuning-time comparison). *)

module W = Tir_workloads.Workloads
module TI = Tir_intrin.Tensor_intrin

type result = {
  workload : W.t;
  target : Tir_sim.Target.t;
  best : Evolutionary.measured option;
  stats : Evolutionary.stats;
}

let latency_us r =
  match r.best with Some b -> b.Evolutionary.latency_us | None -> Float.infinity

let gflops r =
  match r.best with
  | Some b -> r.workload.W.flops /. b.Evolutionary.latency_us /. 1000.0
  | None -> 0.0

(** Intrinsics available on a target (compute MMAs only; data movement
    intrinsics are applied by the sketches directly). *)
let target_intrinsics (target : Tir_sim.Target.t) =
  List.filter_map
    (fun name ->
      match TI.lookup name with
      | intrin when not intrin.TI.is_copy -> Some intrin
      | _ -> None
      | exception TI.Not_registered _ -> None)
    target.Tir_sim.Target.supported_intrinsics

(** Tune a workload. [sketches] overrides the default sketch generation
    (used by the baseline schedulers). When [database] holds a record for
    this (target, workload), the stored schedule is replayed instead of
    searching — the paper's §5.2 "no search is needed for an operator
    already tuned"; fresh results are committed back.

    [jobs] sizes a private domain pool for this call (tests pin it to
    compare job counts); by default the search shares the process-wide
    [TIR_JOBS]-sized pool. Results are bit-identical at any job count. *)
let tune ?(seed = 42) ?(trials = 64) ?use_cost_model ?evolve ?sketches ?database
    ?jobs (target : Tir_sim.Target.t) (w : W.t) : result =
  let rng = Rng.create seed in
  let sketches =
    match sketches with
    | Some s -> s
    | None -> Sketch.generate target w (target_intrinsics target)
  in
  let cached =
    match database with
    | None -> None
    | Some db -> (
        match
          Database.find db ~target_name:target.Tir_sim.Target.name
            ~workload_name:w.W.name
        with
        | None -> None
        | Some r -> Database.replay target ~workload:w ~sketches r)
  in
  match cached with
  | Some best ->
      (* One verification measurement, no search. *)
      let stats = Evolutionary.new_stats () in
      stats.Evolutionary.trials <- 1;
      stats.Evolutionary.profiling_us <-
        best.Evolutionary.latency_us +. Evolutionary.measurement_overhead_us;
      { workload = w; target; best = Some best; stats }
  | None ->
      let pool = Option.map (fun j -> Tir_parallel.Pool.create ~jobs:j ()) jobs in
      let { Evolutionary.best; stats } =
        (* Join the private pool's domains even when the search raises,
           or the process hangs on exit waiting for them. *)
        Fun.protect
          ~finally:(fun () -> Option.iter Tir_parallel.Pool.shutdown pool)
          (fun () ->
            Evolutionary.search ?use_cost_model ?evolve ?pool ~rng ~target
              ~trials sketches)
      in
      (match (database, best) with
      | Some db, Some b -> Database.commit db target w b
      | _ -> ());
      { workload = w; target; best; stats }

(** Simulated end-to-end tuning time in minutes: profiling cost plus a
    fixed per-proposal search overhead (candidate generation, cost-model
    queries). Mirrors the paper's observation that most tuning time is
    hardware profiling. *)
let tuning_minutes r =
  let search_overhead_us = 2_000.0 *. float_of_int r.stats.Evolutionary.proposed in
  (r.stats.Evolutionary.profiling_us +. search_overhead_us) /. 60.0e6
