(** Tuning driver: the end-to-end auto-scheduler of section 4.

    [run] takes a workload and a target, generates tensorization
    candidates against the target's intrinsics (§4.2), builds program
    sketches (§4.3), and runs the evolutionary search (§4.4). The result
    carries the best program, its simulated latency, and search statistics
    (used by the Table 1 tuning-time comparison). [prepare]/[step] expose
    the same run as an explicit state machine so a scheduler can
    interleave many runs on one shared pool, preempting at generation
    boundaries.

    Each phase runs under a [Tir_obs.Span] ([tune.sketch_gen],
    [tune.db_replay], [tune.search]), and a [journal] sink receives the
    run's event stream: [Run_start], the per-generation events from
    [Evolutionary.search], the spans recorded during this call, a dump of
    the metrics registry, and [Run_end]. *)

module W = Tir_workloads.Workloads
module TI = Tir_intrin.Tensor_intrin
module Clock = Tir_obs.Clock
module Journal = Tir_obs.Journal
module Metrics = Tir_obs.Metrics
module Span = Tir_obs.Span

type result = {
  workload : W.t;
  target : Tir_sim.Target.t;
  best : Evolutionary.measured option;
  stats : Evolutionary.stats;
  model : Model.t option;
      (** the trained cost model, when a search actually ran ([None] on
          the database-replay short-circuit) — persist it with
          [Model.Store.absorb] to warm-start later runs *)
}

let latency_us r =
  match r.best with Some b -> b.Evolutionary.latency_us | None -> Float.infinity

(* Explicit 0.0 when there is nothing to rate: no candidate found, or a
   non-finite/non-positive latency (0/0 and x/0 must not leak NaN or
   infinity into reports and JSON). *)
let gflops r =
  match r.best with
  | Some b
    when Float.is_finite b.Evolutionary.latency_us
         && b.Evolutionary.latency_us > 0.0 ->
      r.workload.W.flops /. b.Evolutionary.latency_us /. 1000.0
  | _ -> 0.0

(** Intrinsics available on a target (compute MMAs only; data movement
    intrinsics are applied by the sketches directly). *)
let target_intrinsics (target : Tir_sim.Target.t) =
  List.filter_map
    (fun name ->
      match TI.lookup name with
      | intrin when not intrin.TI.is_copy -> Some intrin
      | _ -> None
      | exception TI.Not_registered _ -> None)
    target.Tir_sim.Target.supported_intrinsics

(* Close out a journaled run: spans recorded since [span0], a registry
   dump, and the [Run_end] summary. *)
let journal_finish sink ~span0 ~t0 ~(stats : Evolutionary.stats) ~best_us =
  List.iter
    (fun (s : Span.span) ->
      Journal.emit sink
        (Journal.Span
           {
             name = s.Span.name;
             depth = s.Span.depth;
             start_us = s.Span.start_us;
             dur_us = s.Span.dur_us;
           }))
    (Span.since span0);
  let snap = Metrics.snapshot () in
  List.iter
    (fun (name, value) -> Journal.emit sink (Journal.Counter { name; value }))
    snap.Metrics.counters;
  List.iter
    (fun (name, value) -> Journal.emit sink (Journal.Gauge { name; value }))
    snap.Metrics.gauges;
  Journal.emit sink
    (Journal.Run_end
       {
         best_us;
         trials = stats.Evolutionary.trials;
         wall_us = Clock.now_us () -. t0;
       })

(** Tuning configuration: one explicit record instead of a pile of
    optional arguments, so call sites that share a setup pass one value
    around and new knobs stop rippling through every signature. *)
module Config = struct
  type t = {
    seed : int;
    trials : int;
    use_cost_model : bool;
    evolve : bool;
    sketches : Sketch.t list option;
        (** overrides sketch generation (baseline schedulers) *)
    database : Database.t option;
        (** replay store: stored schedules short-circuit the search,
            fresh results are committed back *)
    jobs : int option;
        (** size of a private domain pool for this call; [None] shares
            the process-wide [TIR_JOBS]-sized pool *)
    journal : Tir_obs.Journal.sink option;
    retry : Tir_parallel.Retry.policy;
        (** measurement fault retries + per-candidate budget *)
    model : Model.spec;
        (** which cost model ranks candidates: a fresh learner
            ([Model.Gbdt], the default), the analytic prior, or a
            warm-start snapshot ([Model.Warm]) carried over from earlier
            runs *)
  }

  let default =
    {
      seed = 42;
      trials = 64;
      use_cost_model = true;
      evolve = true;
      sketches = None;
      database = None;
      jobs = None;
      journal = None;
      retry = Tir_parallel.Retry.default;
      model = Model.Gbdt;
    }

  let with_seed seed t = { t with seed }
  let with_trials trials t = { t with trials }
  let with_use_cost_model use_cost_model t = { t with use_cost_model }
  let with_evolve evolve t = { t with evolve }
  let with_sketches s t = { t with sketches = Some s }
  let with_database db t = { t with database = Some db }
  let with_jobs jobs t = { t with jobs = Some jobs }
  let with_journal j t = { t with journal = Some j }
  let with_retry retry t = { t with retry }
  let with_model model t = { t with model }
end

(* --- steppable driver -------------------------------------------------- *)

type state =
  | D_engine of Engine.t  (** search in flight *)
  | D_finished of result  (** db commit + journal close already done *)

type driver = {
  d_cfg : Config.t;
  d_w : W.t;
  d_target : Tir_sim.Target.t;
  d_t0 : float;
  d_span0 : int;
  mutable d_pool : Tir_parallel.Pool.t option;
      (** private pool owned by this driver; [None] once released or when
          the pool is shared/external *)
  mutable d_state : state;
}

type progress =
  | Stepped of {
      gen : int;
      trials_done : int;
      best_us : float;
      rank_corr : float;
    }
  | Finished of result

let release d =
  match d.d_pool with
  | None -> ()
  | Some p ->
      d.d_pool <- None;
      Tir_parallel.Pool.shutdown p

(** Set up a tuning run without driving it: journal [Run_start], sketch
    generation, the database-replay short-circuit, and — when the search
    is actually needed — an [Engine.t]. [pool] overrides [cfg.jobs] with
    an externally owned pool (the scheduler passes its shared pool and
    keeps ownership); without it, [cfg.jobs = Some j] creates a private
    pool that {!release} (or the last {!step}) joins. *)
let prepare ?checkpoint ?resume ?pool (cfg : Config.t) (w : W.t)
    (target : Tir_sim.Target.t) : driver =
  let { Config.seed; trials; use_cost_model; evolve; retry; _ } = cfg in
  let t0 = Clock.now_us () in
  let span0 = Span.count () in
  (match cfg.Config.journal with
  | None -> ()
  | Some sink ->
      let jobs =
        match pool with
        | Some p -> Tir_parallel.Pool.jobs p
        | None -> (
            match cfg.Config.jobs with
            | Some j -> j
            | None -> Tir_parallel.Pool.jobs (Tir_parallel.Pool.global ()))
      in
      Journal.emit sink
        (Journal.Run_start
           {
             workload = w.W.name;
             target = target.Tir_sim.Target.name;
             seed;
             trials;
             jobs;
           }));
  let sketches =
    Span.with_span "tune.sketch_gen" (fun () ->
        match cfg.Config.sketches with
        | Some s -> s
        | None -> Sketch.generate target w (target_intrinsics target))
  in
  let cached =
    match cfg.Config.database with
    | Some db when resume = None ->
        Span.with_span "tune.db_replay" (fun () ->
            match
              Database.find db ~target_name:target.Tir_sim.Target.name
                ~workload_name:w.W.name
            with
            | None -> None
            | Some r -> Database.replay target ~workload:w ~sketches r)
    | _ -> None
  in
  match cached with
  | Some best ->
      (* One verification measurement, no search. *)
      let stats = Evolutionary.new_stats () in
      stats.Evolutionary.trials <- 1;
      stats.Evolutionary.profiling_us <-
        best.Evolutionary.latency_us +. Evolutionary.measurement_overhead_us;
      Option.iter
        (fun sink ->
          journal_finish sink ~span0 ~t0 ~stats
            ~best_us:best.Evolutionary.latency_us)
        cfg.Config.journal;
      {
        d_cfg = cfg;
        d_w = w;
        d_target = target;
        d_t0 = t0;
        d_span0 = span0;
        d_pool = None;
        d_state =
          D_finished
            { workload = w; target; best = Some best; stats; model = None };
      }
  | None ->
      let private_pool =
        match pool with
        | Some _ -> None
        | None ->
            Option.map
              (fun j -> Tir_parallel.Pool.create ~jobs:j ())
              cfg.Config.jobs
      in
      let engine_pool =
        match pool with Some p -> Some p | None -> private_pool
      in
      let engine =
        Engine.create ~use_cost_model ~evolve
          ~model:(Model.of_spec cfg.Config.model)
          ~group:(target.Tir_sim.Target.name ^ "|" ^ w.W.name)
          ?pool:engine_pool ?journal:cfg.Config.journal ~retry ?checkpoint
          ?resume ~seed ~target ~trials sketches
      in
      {
        d_cfg = cfg;
        d_w = w;
        d_target = target;
        d_t0 = t0;
        d_span0 = span0;
        d_pool = private_pool;
        d_state = D_engine engine;
      }

(* Close out a run whose engine finished: commit the best schedule to the
   database, finish the journal, join any private pool. Runs exactly once
   per driver. *)
let finalize d (e : Engine.t) : result =
  let { Evolutionary.best; stats } = Engine.result e in
  (match (d.d_cfg.Config.database, best) with
  | Some db, Some b -> Database.commit db d.d_target d.d_w b
  | _ -> ());
  Option.iter
    (fun sink ->
      journal_finish sink ~span0:d.d_span0 ~t0:d.d_t0 ~stats
        ~best_us:
          (match best with
          | Some b -> b.Evolutionary.latency_us
          | None -> Float.nan))
    d.d_cfg.Config.journal;
  release d;
  let r =
    {
      workload = d.d_w;
      target = d.d_target;
      best;
      stats;
      model = Some (Engine.model e);
    }
  in
  d.d_state <- D_finished r;
  r

(** Advance the run by one search generation. Returns [Finished] when the
    run is over (replayed from the database, trial budget reached, or
    space exhausted) — the first [Finished] transition commits the best
    schedule to [cfg.database], closes the journal, and joins the
    driver's private pool; later calls return the same result. *)
let step d : progress =
  match d.d_state with
  | D_finished r -> Finished r
  | D_engine e -> (
      match Engine.step e with
      | _, Engine.Stepped { gen; trials_done; best_us; rank_corr } ->
          Stepped { gen; trials_done; best_us; rank_corr }
      | _, (Engine.Exhausted _ | Engine.Done) -> Finished (finalize d e))

(** Tune a workload under [cfg]. When [cfg.database] holds a record for
    this (target, workload), the stored schedule is replayed instead of
    searching — the paper's §5.2 "no search is needed for an operator
    already tuned"; fresh results are committed back. Results are
    bit-identical at any job count for a fixed seed.

    [checkpoint]/[resume] wire the search's write-ahead hooks (see
    [Evolutionary]); [Session] owns the on-disk log built on them. A
    resumed call skips the database-replay short-circuit — it is
    mid-search by definition. *)
let run ?checkpoint ?resume (cfg : Config.t) (w : W.t)
    (target : Tir_sim.Target.t) : result =
  let d = prepare ?checkpoint ?resume cfg w target in
  match d.d_state with
  | D_finished r -> r
  | D_engine e ->
      (* Join the private pool's domains even when the search raises, or
         the process hangs on exit waiting for them. *)
      Fun.protect
        ~finally:(fun () -> release d)
        (fun () ->
          Span.with_span "tune.search" (fun () ->
              let rec drive () =
                match Engine.step e with
                | _, Engine.Stepped _ -> drive ()
                | _, (Engine.Exhausted _ | Engine.Done) -> ()
              in
              drive ());
          finalize d e)

(** Simulated end-to-end tuning time in minutes: profiling cost plus a
    fixed per-proposal search overhead (candidate generation, cost-model
    queries). Mirrors the paper's observation that most tuning time is
    hardware profiling. *)
let tuning_minutes r =
  let search_overhead_us = 2_000.0 *. float_of_int r.stats.Evolutionary.proposed in
  (r.stats.Evolutionary.profiling_us +. search_overhead_us) /. 60.0e6
