(** Candidate evaluation pipeline plus the process-wide
    measurement/feature memo used by the parallel search.

    Process-wide caches over the pure evaluation pipeline, keyed by
    [Target.fingerprint ^ "|" ^ sketch name ^ "|" ^ Space.key_of]. Safe to
    probe concurrently from pool domains; entries never go stale (the
    simulator is a pure function of target and program).

    The learned cost model that used to share a module with this pipeline
    lives in {!Model}. *)

type evaluation =
  | Inapplicable  (** the sketch rejected the decision vector *)
  | Invalid  (** the §3.3 validator found issues *)
  | Unsound  (** the semantic analyzer proved a race / unsound region / OOB *)
  | Unsupported  (** the machine model cannot run the program *)
  | Evaluated of {
      func : Tir_ir.Primfunc.t;
      fp : Tir_ir.Fingerprint.t;
          (** structural fingerprint of [func] — the program-identity
              component of measurement memo keys, shared between search
              and database replay *)
      features : float array;
      trace : Tir_sched.Trace.t;
          (** the schedule's instruction trace — carried to [measured]
              results and into database records for sketch-free replay *)
    }

(** Key prefix for a target (compute once per search). *)
val cache_prefix : Tir_sim.Target.t -> string

(** The evaluation pipeline: knob pre-filter ([Sketch.rejects], rejecting
    provably inapplicable vectors before any program is materialized),
    cached sketch application, then validation + semantic analysis +
    feature extraction. Does not consult the per-decision-vector memo —
    that is [evaluate_cached]. *)
val evaluate : target:Tir_sim.Target.t -> Sketch.t -> Space.decisions -> evaluation

(** The pre-refactor pipeline, byte for byte: no pre-filter, no
    fingerprint post-memo. Classifies identically to [evaluate] (the
    property tests enforce this); kept for the bench hot-path
    comparison. *)
val evaluate_naive :
  target:Tir_sim.Target.t -> Sketch.t -> Space.decisions -> evaluation

(** Memoized [evaluate]; returns [(cache_hit, outcome)]. *)
val evaluate_cached :
  key:string -> target:Tir_sim.Target.t -> Sketch.t -> Space.decisions ->
  bool * evaluation

(** Outcome of one (memoized) machine-model measurement. *)
type measurement =
  | Measured of float  (** latency in microseconds *)
  | Unsupported_target  (** the machine model cannot run the program *)
  | Unmeasurable
      (** injected faults exhausted the retry budget, or the simulated
          latency blew the per-candidate budget ([retry.timeout_us]).
          Deterministic under a fixed fault seed; never fed to the cost
          model or database, and retry exhaustion is never cached. *)

(** Memoized machine-model measurement; returns [(cache_hit, outcome)].
    [retry] governs fault-injection retries (site [Measure] of
    [Tir_core.Fault]) and the per-candidate measurement budget. *)
val measure_cached :
  ?retry:Tir_parallel.Retry.policy ->
  key:string ->
  target:Tir_sim.Target.t ->
  Tir_ir.Primfunc.t ->
  bool * measurement

type cache_stats = { hits : int; misses : int; entries : int }

(** Combined counters over both caches (bench reporting and the
    cumulative [search.memo_hit_rate] gauge). *)
val cache_stats : unit -> cache_stats

(** Per-table counters, hits/misses from the memo atomics (deterministic at
    any job count): [("eval", _); ("measure", _)]. Feeds the
    per-generation [memo.*.hit_rate] journal gauges. *)
val cache_breakdown : unit -> (string * cache_stats) list

(** Drop every cached entry and reset the counters. *)
val clear_caches : unit -> unit
