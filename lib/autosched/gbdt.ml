(** Gradient-boosted regression trees, from scratch.

    Stand-in for the XGBoost model the paper uses (§4.4): squared-loss
    gradient boosting over depth-limited exact-greedy regression trees.
    Training sets during tuning are small (hundreds of samples), so exact
    split enumeration is cheap. *)

type tree = Leaf of float | Node of { feat : int; thresh : float; left : tree; right : tree }

type t = {
  trees : tree list;  (** applied in order, scaled by [eta] *)
  eta : float;
  base : float;
}

let rec predict_tree tree (x : float array) =
  match tree with
  | Leaf v -> v
  | Node { feat; thresh; left; right } ->
      if x.(feat) <= thresh then predict_tree left x else predict_tree right x

let predict model x =
  List.fold_left
    (fun acc tree -> acc +. (model.eta *. predict_tree tree x))
    model.base model.trees

(** Predict a whole population in one pass over the ensemble: the tree list
    is walked once (outer loop) with an accumulator per candidate, instead
    of one list walk per candidate. Identical results to mapping [predict]
    (same per-candidate summation order). *)
let predict_batch model (xs : float array array) : float array =
  let out = Array.make (Array.length xs) model.base in
  List.iter
    (fun tree ->
      Array.iteri (fun i x -> out.(i) <- out.(i) +. (model.eta *. predict_tree tree x)) xs)
    model.trees;
  out

let mean arr idx =
  if idx = [] then 0.0
  else
    List.fold_left (fun acc i -> acc +. arr.(i)) 0.0 idx /. float_of_int (List.length idx)

(* Best split of [idx] on squared error; returns (feat, thresh, gain). *)
let best_split (xs : float array array) (residual : float array) idx =
  let n = List.length idx in
  if n < 4 then None
  else begin
    let total = List.fold_left (fun acc i -> acc +. residual.(i)) 0.0 idx in
    let best = ref None in
    let nfeat = Array.length xs.(0) in
    for f = 0 to nfeat - 1 do
      let sorted =
        List.sort (fun a b -> Float.compare xs.(a).(f) xs.(b).(f)) idx
      in
      let left_sum = ref 0.0 and left_n = ref 0 in
      let rec go = function
        | [] | [ _ ] -> ()
        | i :: (j :: _ as rest) ->
            left_sum := !left_sum +. residual.(i);
            incr left_n;
            if xs.(i).(f) < xs.(j).(f) then begin
              let right_sum = total -. !left_sum in
              let right_n = n - !left_n in
              let gain =
                (!left_sum *. !left_sum /. float_of_int !left_n)
                +. (right_sum *. right_sum /. float_of_int right_n)
                -. (total *. total /. float_of_int n)
              in
              let thresh = (xs.(i).(f) +. xs.(j).(f)) /. 2.0 in
              match !best with
              | Some (_, _, g) when g >= gain -> ()
              | _ -> best := Some (f, thresh, gain)
            end;
            go rest
      in
      go sorted
    done;
    !best
  end

let rec fit_tree xs residual idx depth =
  if depth = 0 then Leaf (mean residual idx)
  else
    match best_split xs residual idx with
    | None -> Leaf (mean residual idx)
    | Some (feat, thresh, gain) ->
        if gain < 1e-9 then Leaf (mean residual idx)
        else
          let left, right = List.partition (fun i -> xs.(i).(feat) <= thresh) idx in
          if left = [] || right = [] then Leaf (mean residual idx)
          else
            Node
              {
                feat;
                thresh;
                left = fit_tree xs residual left (depth - 1);
                right = fit_tree xs residual right (depth - 1);
              }

(** Fit [rounds] boosting rounds of depth-[depth] trees. *)
let fit ?(rounds = 40) ?(depth = 3) ?(eta = 0.3) (xs : float array array)
    (ys : float array) : t =
  let n = Array.length xs in
  if n = 0 then { trees = []; eta; base = 0.0 }
  else begin
    let base = Array.fold_left ( +. ) 0.0 ys /. float_of_int n in
    let pred = Array.make n base in
    let idx = List.init n (fun i -> i) in
    let trees = ref [] in
    for _ = 1 to rounds do
      let residual = Array.init n (fun i -> ys.(i) -. pred.(i)) in
      let tree = fit_tree xs residual idx depth in
      trees := tree :: !trees;
      Array.iteri (fun i _ -> pred.(i) <- pred.(i) +. (eta *. predict_tree tree xs.(i))) pred
    done;
    { trees = List.rev !trees; eta; base }
  end
