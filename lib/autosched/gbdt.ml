(** Gradient-boosted regression trees, from scratch.

    Stand-in for the XGBoost model the paper uses (§4.4): gradient
    boosting over depth-limited exact-greedy regression trees, with two
    objectives — squared-loss regression ([fit]) and a LambdaRank-style
    pairwise rank loss ([fit_rank]). Training sets during tuning are small
    (hundreds of samples), so exact split enumeration is cheap. *)

type tree = Leaf of float | Node of { feat : int; thresh : float; left : tree; right : tree }

type t = {
  trees : tree list;  (** applied in order, scaled by [eta] *)
  eta : float;
  base : float;
}

let rec predict_tree tree (x : float array) =
  match tree with
  | Leaf v -> v
  | Node { feat; thresh; left; right } ->
      if x.(feat) <= thresh then predict_tree left x else predict_tree right x

let predict model x =
  List.fold_left
    (fun acc tree -> acc +. (model.eta *. predict_tree tree x))
    model.base model.trees

(** Predict a whole population in one pass over the ensemble: the tree list
    is walked once (outer loop) with an accumulator per candidate, instead
    of one list walk per candidate. Identical results to mapping [predict]
    (same per-candidate summation order). *)
let predict_batch model (xs : float array array) : float array =
  let out = Array.make (Array.length xs) model.base in
  List.iter
    (fun tree ->
      Array.iteri (fun i x -> out.(i) <- out.(i) +. (model.eta *. predict_tree tree x)) xs)
    model.trees;
  out

let mean arr idx =
  if idx = [] then 0.0
  else
    List.fold_left (fun acc i -> acc +. arr.(i)) 0.0 idx /. float_of_int (List.length idx)

(* Best split of [idx] on squared error; returns (feat, thresh, gain). *)
let best_split (xs : float array array) (residual : float array) idx =
  let n = List.length idx in
  if n < 4 then None
  else begin
    let total = List.fold_left (fun acc i -> acc +. residual.(i)) 0.0 idx in
    let best = ref None in
    let nfeat = Array.length xs.(0) in
    for f = 0 to nfeat - 1 do
      let sorted =
        List.sort (fun a b -> Float.compare xs.(a).(f) xs.(b).(f)) idx
      in
      let left_sum = ref 0.0 and left_n = ref 0 in
      let rec go = function
        | [] | [ _ ] -> ()
        | i :: (j :: _ as rest) ->
            left_sum := !left_sum +. residual.(i);
            incr left_n;
            if xs.(i).(f) < xs.(j).(f) then begin
              let right_sum = total -. !left_sum in
              let right_n = n - !left_n in
              let gain =
                (!left_sum *. !left_sum /. float_of_int !left_n)
                +. (right_sum *. right_sum /. float_of_int right_n)
                -. (total *. total /. float_of_int n)
              in
              let thresh = (xs.(i).(f) +. xs.(j).(f)) /. 2.0 in
              match !best with
              | Some (_, _, g) when g >= gain -> ()
              | _ -> best := Some (f, thresh, gain)
            end;
            go rest
      in
      go sorted
    done;
    !best
  end

let rec fit_tree xs residual idx depth =
  if depth = 0 then Leaf (mean residual idx)
  else
    match best_split xs residual idx with
    | None -> Leaf (mean residual idx)
    | Some (feat, thresh, gain) ->
        if gain < 1e-9 then Leaf (mean residual idx)
        else
          let left, right = List.partition (fun i -> xs.(i).(feat) <= thresh) idx in
          if left = [] || right = [] then Leaf (mean residual idx)
          else
            Node
              {
                feat;
                thresh;
                left = fit_tree xs residual left (depth - 1);
                right = fit_tree xs residual right (depth - 1);
              }

(** Fit [rounds] boosting rounds of depth-[depth] trees. *)
let fit ?(rounds = 40) ?(depth = 3) ?(eta = 0.3) (xs : float array array)
    (ys : float array) : t =
  let n = Array.length xs in
  if n = 0 then { trees = []; eta; base = 0.0 }
  else begin
    let base = Array.fold_left ( +. ) 0.0 ys /. float_of_int n in
    let pred = Array.make n base in
    let idx = List.init n (fun i -> i) in
    let trees = ref [] in
    for _ = 1 to rounds do
      let residual = Array.init n (fun i -> ys.(i) -. pred.(i)) in
      let tree = fit_tree xs residual idx depth in
      trees := tree :: !trees;
      Array.iteri (fun i _ -> pred.(i) <- pred.(i) +. (eta *. predict_tree tree xs.(i))) pred
    done;
    { trees = List.rev !trees; eta; base }
  end

(** Fit a LambdaRank-style pairwise ranking ensemble.

    Labels are only compared {e within} a group ([groups.(i)] is the
    sample's group id — one group per tuning task), so mixing workloads
    with incomparable latency scales in one dataset is sound: the loss
    never asks whether a c1d candidate beats a gmm candidate. Each round
    computes, per ordered pair [(hi, lo)] with [ys.(hi) > ys.(lo)] in the
    same group, the logistic pairwise gradient
    [rho = 1 / (1 + exp (s_hi - s_lo))] weighted by the label gap, pushes
    [+w*rho] on the winner and [-w*rho] on the loser, and fits the next
    tree to those pseudo-residuals. The model's absolute output is
    meaningless (base is 0); only the induced order matters, which is all
    the search consumes. Sequential and deterministic: sample order and
    group ids fully determine the ensemble. *)
let fit_rank ?(rounds = 40) ?(depth = 3) ?(eta = 0.3)
    (xs : float array array) (ys : float array) ~(groups : int array) : t =
  let n = Array.length xs in
  if n = 0 then { trees = []; eta; base = 0.0 }
  else begin
    (* Pairs are enumerated once: (winner, loser, label gap). *)
    let pairs = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if groups.(i) = groups.(j) && ys.(i) <> ys.(j) then begin
          let hi, lo = if ys.(i) > ys.(j) then (i, j) else (j, i) in
          pairs := (hi, lo, ys.(hi) -. ys.(lo)) :: !pairs
        end
      done
    done;
    let pairs = !pairs in
    if pairs = [] then { trees = []; eta; base = 0.0 }
    else begin
      let pred = Array.make n 0.0 in
      let idx = List.init n (fun i -> i) in
      let lambda = Array.make n 0.0 in
      let trees = ref [] in
      for _ = 1 to rounds do
        Array.fill lambda 0 n 0.0;
        List.iter
          (fun (hi, lo, w) ->
            let rho = 1.0 /. (1.0 +. exp (pred.(hi) -. pred.(lo))) in
            lambda.(hi) <- lambda.(hi) +. (w *. rho);
            lambda.(lo) <- lambda.(lo) -. (w *. rho))
          pairs;
        let tree = fit_tree xs lambda idx depth in
        trees := tree :: !trees;
        Array.iteri
          (fun i _ -> pred.(i) <- pred.(i) +. (eta *. predict_tree tree xs.(i)))
          pred
      done;
      { trees = List.rev !trees; eta; base = 0.0 }
    end
  end

(* --- serialization ------------------------------------------------------ *)

(* Trees serialize to a parenthesized pre-order form with [%h] floats, so
   save -> load -> save is bit-identical:
     (l <value>) | (n <feat> <thresh> <left> <right>) *)

let rec tree_to_buf b = function
  | Leaf v -> Printf.bprintf b "(l %h)" v
  | Node { feat; thresh; left; right } ->
      Printf.bprintf b "(n %d %h " feat thresh;
      tree_to_buf b left;
      Buffer.add_char b ' ';
      tree_to_buf b right;
      Buffer.add_char b ')'

let to_string m =
  let b = Buffer.create 1024 in
  Printf.bprintf b "eta %h base %h trees %d\n" m.eta m.base (List.length m.trees);
  List.iter
    (fun t ->
      tree_to_buf b t;
      Buffer.add_char b '\n')
    m.trees;
  Buffer.contents b

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Recursive-descent over the parenthesized form; tokens are separated by
   single spaces exactly as [tree_to_buf] writes them. *)
let tree_of_string line =
  let len = String.length line in
  let pos = ref 0 in
  let expect c =
    if !pos >= len || line.[!pos] <> c then
      parse_fail "gbdt tree: expected %c at %d in %S" c !pos line;
    incr pos
  in
  let token () =
    let start = !pos in
    while !pos < len && line.[!pos] <> ' ' && line.[!pos] <> ')' do
      incr pos
    done;
    if !pos = start then parse_fail "gbdt tree: empty token at %d in %S" start line;
    String.sub line start (!pos - start)
  in
  let float_tok () =
    let s = token () in
    match float_of_string_opt s with
    | Some f -> f
    | None -> parse_fail "gbdt tree: bad float %S" s
  in
  let int_tok () =
    let s = token () in
    match int_of_string_opt s with
    | Some i -> i
    | None -> parse_fail "gbdt tree: bad int %S" s
  in
  let rec node () =
    expect '(';
    let t =
      match token () with
      | "l" ->
          expect ' ';
          Leaf (float_tok ())
      | "n" ->
          expect ' ';
          let feat = int_tok () in
          expect ' ';
          let thresh = float_tok () in
          expect ' ';
          let left = node () in
          expect ' ';
          let right = node () in
          Node { feat; thresh; left; right }
      | tok -> parse_fail "gbdt tree: unknown tag %S" tok
    in
    expect ')';
    t
  in
  let t = node () in
  if !pos <> len then parse_fail "gbdt tree: trailing garbage in %S" line;
  t

let of_string s =
  match String.split_on_char '\n' s with
  | [] -> parse_fail "gbdt: empty input"
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | [ "eta"; eta; "base"; base; "trees"; count ] ->
          let eta =
            match float_of_string_opt eta with
            | Some f -> f
            | None -> parse_fail "gbdt: bad eta %S" eta
          in
          let base =
            match float_of_string_opt base with
            | Some f -> f
            | None -> parse_fail "gbdt: bad base %S" base
          in
          let count =
            match int_of_string_opt count with
            | Some i -> i
            | None -> parse_fail "gbdt: bad tree count %S" count
          in
          let lines = List.filter (fun l -> l <> "") rest in
          if List.length lines <> count then
            parse_fail "gbdt: expected %d trees, got %d" count
              (List.length lines);
          { trees = List.map tree_of_string lines; eta; base }
      | _ -> parse_fail "gbdt: bad header %S" header)
