(** Search-space plumbing: knobs, decision vectors, and tile-size
    enumeration (paper §4.3: sketches fix structure, decisions fill the
    remaining choices). *)

type knob = { name : string; count : int }
(** A named choice among [count] alternatives, addressed by index. *)

type decisions = (string * int) list

(** The chosen index for a knob (0 when absent). *)
val decide : decisions -> string -> int

exception Unknown_knob of string

(** Strict [decide]: raises {!Unknown_knob} when the vector has no entry
    for the knob. Sketch application uses this so typos and stale decision
    vectors (old search-space versions) fail loudly instead of silently
    scheduling with choice 0. *)
val decide_exn : decisions -> string -> int

(** All ordered factorizations of [extent] into [parts] factors whose
    product is exactly [extent]; factors beyond [max_factor] only in the
    outermost position. Never empty. *)
val factor_splits : ?max_factor:int -> int -> int -> int list list

val random_decisions : Rng.t -> knob list -> decisions

(** Re-sample one knob at random (evolutionary mutation). *)
val mutate : Rng.t -> knob list -> decisions -> decisions

(** Uniform per-knob crossover of two parents. *)
val crossover : Rng.t -> knob list -> decisions -> decisions -> decisions

(** Canonical (order-insensitive) key for deduplication and cache keying. *)
val key_of : decisions -> string

(** Canonical key relative to a knob list: the vector projected onto
    [knobs] in knob order via {!decide_exn}. Unlike {!key_of}, entries for
    knobs the space does not read cannot split cache entries for
    behaviourally identical candidates — use this for memo keys, [key_of]
    for raw-vector identity. Raises {!Unknown_knob} on a missing knob. *)
val canonical_key : knob list -> decisions -> string
