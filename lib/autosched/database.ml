(** Tuning-record database (paper §5.2).

    "TensorIR can eliminate search time further by caching historical cost
    models and search records. So no search is needed to build a model for
    an operator already tuned." Records map (target, workload) to the best
    sketch name and decision vector found; [Tune]-level lookups replay the
    decisions on a fresh sketch instead of searching.

    The on-disk format is line-oriented ("target|workload|sketch|decisions|
    latency_us"), append-friendly and human-inspectable. *)

type record = {
  target_name : string;
  workload_name : string;
  sketch_name : string;
  decisions : Space.decisions;
  latency_us : float;
}

type t = { mutable records : record list }

let create () = { records = [] }

let key target_name workload_name = target_name ^ "|" ^ workload_name

let find t ~target_name ~workload_name =
  let k = key target_name workload_name in
  List.fold_left
    (fun best r ->
      if String.equal (key r.target_name r.workload_name) k then
        match best with
        | Some b when b.latency_us <= r.latency_us -> best
        | _ -> Some r
      else best)
    None t.records

let add t r = t.records <- r :: t.records

let size t = List.length t.records

(* --- serialization --- *)

let decisions_to_string (d : Space.decisions) =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (List.sort compare d))

let decisions_of_string s =
  if String.equal s "" then []
  else
    List.map
      (fun kv ->
        match String.index_opt kv '=' with
        | Some i ->
            ( String.sub kv 0 i,
              int_of_string (String.sub kv (i + 1) (String.length kv - i - 1)) )
        | None -> failwith ("bad decision entry " ^ kv))
      (String.split_on_char ',' s)

let record_to_line r =
  Printf.sprintf "%s|%s|%s|%s|%.6f" r.target_name r.workload_name r.sketch_name
    (decisions_to_string r.decisions)
    r.latency_us

let record_of_line line =
  match String.split_on_char '|' line with
  | [ target_name; workload_name; sketch_name; decisions; latency ] ->
      {
        target_name;
        workload_name;
        sketch_name;
        decisions = decisions_of_string decisions;
        latency_us = float_of_string latency;
      }
  | _ -> failwith ("bad database line: " ^ line)

let save t path =
  let oc = open_out path in
  List.iter (fun r -> output_string oc (record_to_line r ^ "\n")) (List.rev t.records);
  close_out oc

let load path =
  if not (Sys.file_exists path) then create ()
  else begin
    let ic = open_in path in
    let records = ref [] in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then records := record_of_line line :: !records
       done
     with End_of_file -> ());
    close_in ic;
    { records = !records }
  end

(** Record the best result of a tuning run. *)
let commit t (target : Tir_sim.Target.t) (w : Tir_workloads.Workloads.t)
    (best : Evolutionary.measured) =
  add t
    {
      target_name = target.Tir_sim.Target.name;
      workload_name = w.Tir_workloads.Workloads.name;
      sketch_name = best.Evolutionary.sketch_name;
      decisions = best.Evolutionary.decisions;
      latency_us = best.Evolutionary.latency_us;
    }

(** Replay a stored record against freshly generated sketches: applies the
    recorded decisions to the matching sketch — no search, no measurement
    beyond one. Returns [None] if the record no longer applies (e.g. the
    sketch space changed). Both the re-application and the verification
    measurement go through the process-wide memo in [Cost_model], so
    replaying a schedule tuned earlier in the same process re-simulates
    nothing. *)
let replay (target : Tir_sim.Target.t) (sketches : Sketch.t list) (r : record) :
    Evolutionary.measured option =
  match
    List.find_opt (fun s -> String.equal s.Sketch.name r.sketch_name) sketches
  with
  | None -> None
  | Some sk -> (
      let key =
        Cost_model.cache_prefix target ^ sk.Sketch.space_id ^ "|" ^ Space.key_of r.decisions
      in
      match snd (Cost_model.evaluate_cached ~key ~target sk r.decisions) with
      | Cost_model.Inapplicable | Cost_model.Invalid | Cost_model.Unsupported -> None
      | Cost_model.Evaluated { func; _ } -> (
          match snd (Cost_model.measure_cached ~key ~target func) with
          | None -> None
          | Some latency_us ->
              Some
                {
                  Evolutionary.sketch_name = r.sketch_name;
                  decisions = r.decisions;
                  func;
                  latency_us;
                }))
