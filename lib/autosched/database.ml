(** Tuning-record database (paper §5.2).

    "TensorIR can eliminate search time further by caching historical cost
    models and search records. So no search is needed to build a model for
    an operator already tuned." Records map (target, workload) to the best
    schedule found, carrying the full instruction trace of that schedule:
    [replay] re-applies the trace to a freshly built start function — no
    sketch regeneration, so records survive search-space refactors — and
    falls back to re-applying the recorded decisions through the sketch for
    traceless (v1) records.

    On-disk format v2 is line-oriented, append-friendly and
    human-inspectable:
    {v
    # tensorir database v2
    target|workload|sketch|base|decisions|latency_us|trace
    v}
    Every field is percent-escaped, so names containing the [|] field
    separator (or the [,]/[=] used inside the decisions field, or newlines)
    cannot inject fields. The serialized trace has its newlines escaped to
    keep one record per line. Headerless files are read as the v1 format
    ([target|workload|sketch|decisions|latency_us], no escaping) for
    backward compatibility. *)

module W = Tir_workloads.Workloads
module TI = Tir_intrin.Tensor_intrin

type record = {
  target_name : string;
  workload_name : string;
  sketch_name : string;
  base : string;  (** [Sketch.base]: intrinsic name of the tensorization
                      candidate the schedule starts from, or [""] *)
  decisions : Space.decisions;
  latency_us : float;
  trace : Tir_sched.Trace.t option;
      (** [None] only for records loaded from v1 files *)
}

type t = { mutable records : record list }

(* Registry counters: replays attempted / replayed from trace alone /
   fresh results committed. *)
let m_found = Tir_obs.Metrics.counter "db.found"
let m_replayed = Tir_obs.Metrics.counter "db.replayed"
let m_committed = Tir_obs.Metrics.counter "db.committed"

let create () = { records = [] }

let find t ~target_name ~workload_name =
  (* Compare the name pair, not a joined string: a '|' inside a name must
     not let ("a|b", "c") alias ("a", "b|c"). *)
  List.fold_left
    (fun best r ->
      if String.equal r.target_name target_name && String.equal r.workload_name workload_name
      then
        match best with
        | Some b when b.latency_us <= r.latency_us -> best
        | _ -> Some r
      else best)
    None t.records

let add t r = t.records <- r :: t.records

let size t = List.length t.records

(* --- serialization --- *)

let version_header = "# tensorir database v2"

(* Percent-escape every character with structural meaning in the line
   format: '%' (the escape itself), '|' (field separator), '\n'/'\r' (record
   separator), ',' and '=' (decision-list separators). *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' | '|' | '\n' | '\r' | ',' | '=' ->
          Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | _ -> failwith "bad escape in database field"
  in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '%' then begin
       if !i + 2 >= n then failwith "truncated escape in database field";
       Buffer.add_char b (Char.chr ((hex s.[!i + 1] * 16) + hex s.[!i + 2]));
       i := !i + 3
     end
     else begin
       Buffer.add_char b s.[!i];
       incr i
     end)
  done;
  Buffer.contents b

let decisions_to_string (d : Space.decisions) =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=%d" (escape k) v) (List.sort compare d))

let decisions_of_string ~unescape_keys s =
  if String.equal s "" then []
  else
    List.map
      (fun kv ->
        match String.index_opt kv '=' with
        | Some i ->
            let k = String.sub kv 0 i in
            ( (if unescape_keys then unescape k else k),
              int_of_string (String.sub kv (i + 1) (String.length kv - i - 1)) )
        | None -> failwith ("bad decision entry " ^ kv))
      (String.split_on_char ',' s)

let record_to_line r =
  Printf.sprintf "%s|%s|%s|%s|%s|%.6f|%s" (escape r.target_name)
    (escape r.workload_name) (escape r.sketch_name) (escape r.base)
    (decisions_to_string r.decisions)
    r.latency_us
    (match r.trace with Some tr -> escape (Tir_sched.Trace.to_string tr) | None -> "")

let record_of_line_v2 line =
  match String.split_on_char '|' line with
  | [ target_name; workload_name; sketch_name; base; decisions; latency; trace ] ->
      {
        target_name = unescape target_name;
        workload_name = unescape workload_name;
        sketch_name = unescape sketch_name;
        base = unescape base;
        decisions = decisions_of_string ~unescape_keys:true decisions;
        latency_us = float_of_string latency;
        trace =
          (if String.equal trace "" then None
           else Some (Tir_sched.Trace.of_string (unescape trace)));
      }
  | _ -> failwith ("bad database line: " ^ line)

(* v1: [target|workload|sketch|decisions|latency_us], unescaped. *)
let record_of_line_v1 line =
  match String.split_on_char '|' line with
  | [ target_name; workload_name; sketch_name; decisions; latency ] ->
      {
        target_name;
        workload_name;
        sketch_name;
        base = "";
        decisions = decisions_of_string ~unescape_keys:false decisions;
        latency_us = float_of_string latency;
        trace = None;
      }
  | _ -> failwith ("bad database line: " ^ line)

(* One guarded write under the fault-injection harness (site [Db_write]):
   injected failures are retried with deterministic backoff; exhaustion
   surfaces as [Error.Error] with kind [Fault], never as a silent partial
   write. No-op (beyond the write itself) when injection is off. *)
let db_write_guard ~key =
  if Tir_core.Fault.enabled Tir_core.Fault.Db_write then
    try
      Tir_parallel.Retry.with_retries ~site:"db" ~key (fun ~attempt ->
          Tir_core.Fault.maybe_fail Tir_core.Fault.Db_write
            ~key:(Printf.sprintf "%s@%d" key attempt))
    with Tir_parallel.Retry.Exhausted { site; key; attempts } ->
      Tir_core.Error.raise_error ~context:key Tir_core.Error.Fault
        (Printf.sprintf "%s write failed after %d attempts" site attempts)

let save t path =
  (* Write-then-rename: a crash (or an exhausted injected fault) mid-save
     leaves the previous snapshot intact — readers never observe a
     half-written database. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (version_header ^ "\n");
     List.iteri
       (fun i r ->
         db_write_guard ~key:(Printf.sprintf "dbsave:%d" i);
         output_string oc (record_to_line r ^ "\n"))
       (List.rev t.records);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let m_torn = Tir_obs.Metrics.counter "db.torn_dropped"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  if not (Sys.file_exists path) then create ()
  else begin
    let content = read_file path in
    let len = String.length content in
    (* A file that does not end in a newline was torn by a crash
       mid-append: its final (partial) line is dropped if unparseable.
       Newline-terminated garbage is still an error — that is corruption,
       not a torn write. *)
    let complete_tail = len = 0 || content.[len - 1] = '\n' in
    let lines = String.split_on_char '\n' content in
    let records = ref [] in
    let v2 = ref false in
    let parse line = if !v2 then record_of_line_v2 line else record_of_line_v1 line in
    let rec go = function
      | [] -> ()
      | [ last ] when not complete_tail ->
          let trimmed = String.trim last in
          if trimmed <> "" && trimmed.[0] <> '#'
             && not (String.equal trimmed version_header) then (
            match parse last with
            | r -> records := r :: !records
            | exception _ -> Tir_obs.Metrics.incr m_torn)
      | line :: rest ->
          let trimmed = String.trim line in
          if String.equal trimmed version_header then v2 := true
          else if trimmed <> "" && trimmed.[0] <> '#' then
            records := parse line :: !records;
          go rest
    in
    go lines;
    { records = !records }
  end

(** [load] through the unified error surface: [Io] when the filesystem
    refuses, [Corrupt] when a (complete) line violates the format. *)
let load_result path : (t, Tir_core.Error.t) result =
  match load path with
  | db -> Ok db
  | exception Failure msg ->
      Error (Tir_core.Error.make ~context:path Tir_core.Error.Corrupt msg)
  | exception Tir_sched.Trace.Parse_error msg ->
      Error
        (Tir_core.Error.make ~context:path Tir_core.Error.Corrupt
           ("bad trace field: " ^ msg))
  | exception Sys_error msg ->
      Error (Tir_core.Error.make ~context:path Tir_core.Error.Io msg)
  | exception Tir_core.Error.Error e -> Error e

(** Record the best result of a tuning run. *)
let commit t (target : Tir_sim.Target.t) (w : W.t) (best : Evolutionary.measured) =
  Tir_obs.Metrics.incr m_committed;
  add t
    {
      target_name = target.Tir_sim.Target.name;
      workload_name = w.W.name;
      sketch_name = best.Evolutionary.sketch_name;
      base = best.Evolutionary.base;
      decisions = best.Evolutionary.decisions;
      latency_us = best.Evolutionary.latency_us;
      trace = Some best.Evolutionary.trace;
    }

(* --- replay --- *)

(* Trace-replay hit-rate counters for the bench JSON: how many records a
   replay was attempted for, and how many replayed from their trace alone
   (the fallback sketch path does not count as a trace replay). The same
   counts (plus commits) also flow into the metrics registry as
   [db.found] / [db.replayed] / [db.committed]; [reset_replay_counters]
   only clears the local pair ([Tir_obs.Metrics.reset] clears the registry
   side). *)
let replay_found = ref 0
let replay_ok = ref 0
let replay_counters () = (!replay_found, !replay_ok)

let reset_replay_counters () =
  replay_found := 0;
  replay_ok := 0

(* The function the record's trace was applied to: the workload's func for
   scalar sketches, or the tensorization candidate's canonical program for
   [base = <intrinsic>]. *)
let base_func (w : W.t) (base : string) =
  if String.equal base "" then Some w.W.func
  else
    match TI.lookup base with
    | intrin -> Option.map (fun c -> c.Candidate.func) (Candidate.generate w intrin)
    | exception TI.Not_registered _ -> None

(* Replay from the serialized trace alone: rebuild the start function from
   (workload, base), re-apply every instruction, re-validate, measure once
   (memoized on the digest of the replayed program). *)
let replay_from_trace (target : Tir_sim.Target.t) (w : W.t) (r : record) :
    Evolutionary.measured option =
  match r.trace with
  | None -> None
  | Some tr -> (
      match base_func w r.base with
      | None -> None
      | Some f -> (
          match Tir_sched.Schedule.replay tr f with
          | exception Tir_sched.State.Schedule_error _ -> None
          | sch -> (
              let func = Tir_sched.Schedule.func sch in
              match Tir_sched.Validate.check_func func with
              | _ :: _ -> None
              | [] -> (
                  (* [prog# ^ structural fingerprint] — the same key form
                     the search's measurement memo uses, so a replayed
                     record hits the entry a live search already paid
                     for (and vice versa). *)
                  let key =
                    Eval.cache_prefix target ^ "prog#"
                    ^ Sketch.workload_digest func
                  in
                  match snd (Eval.measure_cached ~key ~target func) with
                  | Eval.Unsupported_target | Eval.Unmeasurable -> None
                  | Eval.Measured latency_us ->
                      Some
                        {
                          Evolutionary.sketch_name = r.sketch_name;
                          base = r.base;
                          decisions = Tir_sched.Trace.decisions tr;
                          trace = tr;
                          func;
                          latency_us;
                        }))))

(* Legacy path for traceless (v1) records: re-apply the stored decisions
   through the matching freshly generated sketch. [Space.Unknown_knob]
   means the sketch's knob set changed since the record was written — the
   record is stale, not an error. *)
let replay_from_sketch (target : Tir_sim.Target.t) (sketches : Sketch.t list)
    (r : record) : Evolutionary.measured option =
  match
    List.find_opt (fun s -> String.equal s.Sketch.name r.sketch_name) sketches
  with
  | None -> None
  | Some sk -> (
      (* The evaluation key is the canonical (knob-projected) form the
         search uses; [Space.canonical_key] reads the vector with
         [decide_exn], so a missing knob — the search space changed since
         the record was written — parks the record as stale below. *)
      match
        let key =
          Eval.cache_prefix target ^ sk.Sketch.space_id ^ "|"
          ^ Space.canonical_key sk.Sketch.knobs r.decisions
        in
        snd (Eval.evaluate_cached ~key ~target sk r.decisions)
      with
      | exception Space.Unknown_knob _ -> None
      | Eval.Inapplicable | Eval.Invalid | Eval.Unsound
      | Eval.Unsupported ->
          None
      | Eval.Evaluated { func; fp; trace; _ } -> (
          let key =
            Eval.cache_prefix target ^ "prog#"
            ^ Tir_ir.Fingerprint.to_hex fp
          in
          match snd (Eval.measure_cached ~key ~target func) with
          | Eval.Unsupported_target | Eval.Unmeasurable -> None
          | Eval.Measured latency_us ->
              Some
                {
                  Evolutionary.sketch_name = r.sketch_name;
                  base = sk.Sketch.base;
                  decisions = Tir_sched.Trace.decisions trace;
                  trace;
                  func;
                  latency_us;
                }))

(** Replay a stored record: trace-first (no sketch regeneration — the
    record is portable across search-space versions), falling back to
    re-applying the recorded decisions through [sketches] for v1 records.
    Returns [None] if neither path yields a valid, measurable schedule.
    Re-application and the verification measurement go through the
    process-wide memo in [Eval], so replaying a schedule tuned
    earlier in the same process re-simulates nothing. *)
let replay (target : Tir_sim.Target.t) ~(workload : W.t) ~(sketches : Sketch.t list)
    (r : record) : Evolutionary.measured option =
  incr replay_found;
  Tir_obs.Metrics.incr m_found;
  match replay_from_trace target workload r with
  | Some m ->
      incr replay_ok;
      Tir_obs.Metrics.incr m_replayed;
      Some m
  | None -> replay_from_sketch target sketches r
