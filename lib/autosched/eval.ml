(** Candidate evaluation pipeline plus the process-wide measurement memo.

    The memo tables cache the two expensive stages of candidate evaluation
    (schedule application + §3.3 validation + feature extraction, and the
    machine-model measurement) keyed by
    [target fingerprint | sketch name | canonical decision key]. The
    simulator is a pure function of (target, program), and a (sketch,
    decisions) pair determines the program, so entries never go stale; the
    tables are shared by every search in the process and are safe to probe
    from pool domains concurrently. Duplicate proposals — mutation and
    crossover collide often across generations, and ablation runs re-tune
    the same workloads — never re-enter the simulator.

    This used to live inside [Cost_model], fused with the learner; the
    learner is now [Model] and this module owns evaluation end to end. *)

module Memo = Tir_parallel.Memo

(** Outcome of the candidate evaluation pipeline (§4.3 apply, §3.3
    validate, feature extraction). Immutable, safe to share across
    domains. *)
type evaluation =
  | Inapplicable  (** the sketch rejected the decision vector *)
  | Invalid  (** the §3.3 validator found issues *)
  | Unsound  (** the semantic analyzer proved a race / unsound region / OOB *)
  | Unsupported  (** the machine model cannot run the program *)
  | Evaluated of {
      func : Tir_ir.Primfunc.t;
      fp : Tir_ir.Fingerprint.t;
          (** structural fingerprint of [func] — the program-identity
              component of measurement memo keys, shared between search
              and database replay *)
      features : float array;
      trace : Tir_sched.Trace.t;
          (** the schedule's instruction trace — carried to [measured]
              results and into database records for sketch-free replay *)
    }

(** Outcome of one (memoized) machine-model measurement. *)
type measurement =
  | Measured of float  (** latency in microseconds *)
  | Unsupported_target  (** the machine model cannot run the program *)
  | Unmeasurable
      (** the candidate could not be measured: injected faults exhausted
          the retry budget, or the simulated latency blew the
          per-candidate measurement budget. Deterministic under a fixed
          fault seed — and never fed to the cost model or database. *)

(* Named tables feed the metrics registry: [memo.eval.*] and
   [memo.measure.*] (hits / misses / pending waits). *)
let eval_cache : evaluation Memo.t = Memo.create ~name:"eval" ()
let measure_cache : measurement Memo.t = Memo.create ~name:"measure" ()

(** [cache_prefix target] — compute once per search, prepend to candidate
    keys ([sketch name ^ "|" ^ Space.key_of decisions]). The full decision
    key (not just a hash) is part of the cache key, so distinct candidates
    can never alias. *)
let cache_prefix target = Tir_sim.Target.fingerprint target ^ "|"

(* There used to be a second memo here keyed by (target, program
   fingerprint), on the theory that distinct decision vectors often
   materialize structurally identical programs whose post-apply work
   (validate / analyze / extract) could be shared. Measured over full
   bench runs it recorded 0 hits in ~1300 misses: [evaluate] only runs
   behind the eval cache's canonical-decision-key dedup, and since the
   exact knob pre-filter (PR 6) folded the vectorization-width fallback
   into the decision space, surviving distinct vectors materialize
   distinct programs. A memo with a guaranteed-cold key is pure overhead
   (fingerprint-keyed allocation + probe per candidate), so the
   classification now runs inline. *)

(* Candidates rejected by the static legality certificate alone — the
   search never ran the region/bounds analyzers or feature extraction on
   them. Incremented only inside the eval memo's compute function, so the
   count is bit-identical at any TIR_JOBS. *)
let m_pruned_static = Tir_obs.Metrics.counter "search.pruned_static"

(* [Space.Unknown_knob] deliberately propagates: the search only builds
   decision vectors from the sketch's own knob list, so an unknown knob is
   a programming error, not an invalid sample. *)
let evaluate ~target (sk : Sketch.t) (d : Space.decisions) : evaluation =
  if sk.Sketch.rejects d then Inapplicable
  else
    match sk.Sketch.apply d with
    | exception Tir_sched.State.Schedule_error _ -> Inapplicable
    | sch -> (
        let f = Tir_sched.Schedule.func sch in
        match Tir_sched.Validate.check_func f with
        | _ :: _ -> Invalid
        | [] -> (
            (* Static pre-filter: a proven-illegal parallel structure is
               Unsound without running the remaining analyzers. The
               certificate is served from the fingerprint-keyed race memo,
               and [Analysis.errors] below shares it, so nothing is
               analyzed twice. *)
            let verdict = Tir_analysis.Analysis.certify f in
            Tir_analysis.Legality.count verdict;
            match verdict with
            | Tir_analysis.Legality.Illegal _ ->
                Tir_obs.Metrics.incr m_pruned_static;
                Unsound
            | Tir_analysis.Legality.Legal | Tir_analysis.Legality.Unknown -> (
                if Tir_analysis.Analysis.errors f <> [] then Unsound
                else
                  match Features.extract target f with
                  | features ->
                      Evaluated
                        {
                          func = f;
                          fp = Tir_ir.Fingerprint.func f;
                          features;
                          trace = Tir_sched.Schedule.instructions sch;
                        }
                  | exception Tir_sim.Machine.Unsupported _ -> Unsupported)))

(** The pre-refactor pipeline, byte for byte: no knob pre-filter —
    every candidate runs the full
    apply/validate/analyze/extract chain. Kept for the bench hot-path
    comparison and the differential property test ([evaluate] must classify
    identically). *)
let evaluate_naive ~target (sk : Sketch.t) (d : Space.decisions) : evaluation =
  match sk.Sketch.apply d with
  | exception Tir_sched.State.Schedule_error _ -> Inapplicable
  | sch -> (
      let f = Tir_sched.Schedule.func sch in
      match Tir_sched.Validate.check_func f with
      | _ :: _ -> Invalid
      | [] when Tir_analysis.Analysis.errors f <> [] -> Unsound
      | [] -> (
          match Features.extract target f with
          | features ->
              Evaluated
                {
                  func = f;
                  fp = Tir_ir.Fingerprint.func f;
                  features;
                  trace = Tir_sched.Schedule.instructions sch;
                }
          | exception Tir_sim.Machine.Unsupported _ -> Unsupported))

(** Memoized evaluation; returns [(cache_hit, outcome)]. *)
let evaluate_cached ~key ~target sk d =
  Memo.find_or_add eval_cache key (fun () -> evaluate ~target sk d)

let m_timeout = Tir_obs.Metrics.counter "measure.timeout"

(* One measurement attempt under the retry policy's budget. *)
let classify policy latency_us =
  if latency_us > policy.Tir_parallel.Retry.timeout_us then begin
    Tir_obs.Metrics.incr m_timeout;
    Unmeasurable
  end
  else Measured latency_us

(** Memoized measurement; returns [(cache_hit, outcome)].

    Fault handling: when injection is configured for the [Measure] site,
    each attempt passes a per-attempt fault key to the simulator and
    injected failures are retried under [retry]. Retry exhaustion raises
    out of the memo's compute function — the memo removes its pending
    marker on a raise — so an exhausted candidate is reported
    [Unmeasurable] {e without being cached}: it never poisons the memo
    for a later run with different fault configuration. A candidate whose
    simulated latency exceeds [retry.timeout_us] is deterministically
    [Unmeasurable] (that outcome {e is} cached — the simulator is pure). *)
let measure_cached ?(retry = Tir_parallel.Retry.default) ~key ~target f =
  match
    Memo.find_or_add measure_cache key (fun () ->
        match
          if Tir_core.Fault.enabled Tir_core.Fault.Measure then
            Tir_parallel.Retry.with_retries ~policy:retry ~site:"measure" ~key
              (fun ~attempt ->
                Tir_sim.Machine.measure_us
                  ~fault_key:(Printf.sprintf "%s@%d" key attempt)
                  target f)
          else Tir_sim.Machine.measure_us target f
        with
        | latency_us -> classify retry latency_us
        | exception Tir_sim.Machine.Unsupported _ -> Unsupported_target)
  with
  | outcome -> outcome
  | exception Tir_parallel.Retry.Exhausted _ -> (false, Unmeasurable)

type cache_stats = { hits : int; misses : int; entries : int }

let table_stats m =
  { hits = Memo.hits m; misses = Memo.misses m; entries = Memo.length m }

(** Per-table counters for the per-generation journal gauges. *)
let cache_breakdown () =
  [ ("eval", table_stats eval_cache); ("measure", table_stats measure_cache) ]

let cache_stats () =
  {
    hits = Memo.hits eval_cache + Memo.hits measure_cache;
    misses = Memo.misses eval_cache + Memo.misses measure_cache;
    entries = Memo.length eval_cache + Memo.length measure_cache;
  }

(** Drop every cached evaluation and measurement (tests; fresh-process
    comparisons). *)
let clear_caches () =
  Memo.clear eval_cache;
  Memo.clear measure_cache
