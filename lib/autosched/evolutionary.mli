(** Evolutionary search over program sketches (paper §4.4): mutate and
    cross the elite decision vectors, filter by applicability and the §3.3
    validator, rank with the learned cost model, measure the top batch.

    The loop itself is {!Engine} (an explicit [step]-per-generation state
    machine); this module re-exports its types under their historical
    names and provides the run-to-completion driver [search]. *)

open Tir_ir

type measured = Engine.measured = {
  sketch_name : string;
  base : string;  (** [Sketch.base] — start-function recipe for replay *)
  decisions : Space.decisions;
      (** extracted from [trace] ([Trace.decisions]) — kept as a field for
          cache keys and reporting *)
  trace : Tir_sched.Trace.t;
      (** full instruction trace of the winning schedule; serialized into
          database records so they replay without sketch regeneration *)
  func : Primfunc.t;
  latency_us : float;
}

type stats = Engine.stats = {
  mutable trials : int;  (** programs measured *)
  mutable proposed : int;  (** programs proposed *)
  mutable invalid : int;  (** rejected by validation *)
  mutable unsound : int;  (** rejected by the semantic analyzer *)
  mutable inapplicable : int;  (** rejected by the sketch *)
  mutable unmeasurable : int;
      (** dropped after measurement faults exhausted their retries or the
          per-candidate budget expired *)
  mutable best_curve : (int * float) list;  (** (trial, best latency) *)
  mutable profiling_us : float;  (** simulated measurement time *)
  mutable cache_hits : int;  (** evaluation/measurement memo hits *)
  mutable cache_lookups : int;  (** evaluation/measurement memo probes *)
}

val new_stats : unit -> stats

(** [cache_hits / cache_lookups] (0 when nothing was probed). *)
val cache_hit_rate : stats -> float

type result = Engine.result = { best : measured option; stats : stats }

(** Write-ahead checkpoint hooks, called synchronously from the search's
    sequential reduces (never from pool domains): [on_seen] receives the
    fresh dedup keys of each generation in slot order, [on_measured] each
    measured candidate in measurement order, and [on_generation] — the
    commit marker — the cumulative stats once a generation completes. *)
type checkpoint = Engine.checkpoint = {
  on_seen : gen:int -> string list -> unit;
  on_measured : gen:int -> measured -> unit;
  on_generation : gen:int -> stats -> best_us:float -> unit;
}

(** State rebuilt from a checkpoint log: re-enters the search at
    generation [r_gen] with the dedup set, the measured history (original
    order) and the committed counter snapshot ([r_stats.best_curve] is
    ignored — the curve is rebuilt from [r_measured]). *)
type resume = Engine.resume = {
  r_gen : int;
  r_seen : string list;
  r_measured : measured list;
  r_stats : stats;
}

(** Fixed per-measurement overhead (compilation, transfer). *)
val measurement_overhead_us : float

(** Measurement repeats per candidate, capped at [measurement_cap_us]. *)
val measurement_runs : float

val measurement_cap_us : float

(** Run the search for [trials] measured candidates.
    [use_cost_model:false] ranks randomly; [evolve:false] disables
    mutation/crossover (pure random search) — both are ablations.
    [pool] is the domain pool the candidate pipeline fans out across
    (default: the process-wide [TIR_JOBS]-sized pool); results are
    bit-identical at any job count for a fixed [seed].

    Each generation draws from its own [(seed, gen)]-derived stream
    ([Rng.for_generation]), so a process resumed from a checkpoint
    ([resume]) re-enters any generation with bit-identical randomness.
    [retry] governs measurement fault retries and the per-candidate
    measurement budget ([Eval.measure_cached]); candidates whose
    measurements exhaust it are counted [unmeasurable] and skipped —
    they never reach the cost model, the elite set, or the checkpoint
    log.

    [model]/[group] select the learned cost model and its label
    normalization group, as in [Engine.create].

    Every generation bumps the [search.*] counters and the
    [costmodel.rank_corr] gauge in the metrics registry. When [journal]
    is given, each generation additionally emits one
    [Tir_obs.Journal.Generation] summary event plus one [Pair] event per
    measured candidate (predicted score vs measured latency). Journal
    counts are accumulated in the sequential slot-order reduce, so they
    are bit-identical at any job count too. *)
val search :
  ?population:int ->
  ?measure_batch:int ->
  ?use_cost_model:bool ->
  ?evolve:bool ->
  ?model:Model.t ->
  ?group:string ->
  ?pool:Tir_parallel.Pool.t ->
  ?journal:Tir_obs.Journal.sink ->
  ?retry:Tir_parallel.Retry.policy ->
  ?checkpoint:checkpoint ->
  ?resume:resume ->
  seed:int ->
  target:Tir_sim.Target.t ->
  trials:int ->
  Sketch.t list ->
  result
