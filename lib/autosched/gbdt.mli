(** Gradient-boosted regression trees, from scratch: the stand-in for the
    paper's XGBoost cost model (§4.4). Squared-loss boosting over
    depth-limited exact-greedy trees. *)

type tree

type t = { trees : tree list; eta : float; base : float }

val predict : t -> float array -> float

(** Predict a whole population in one pass over the ensemble; identical
    values to mapping [predict] over the rows. *)
val predict_batch : t -> float array array -> float array

(** Fit [rounds] boosting rounds of depth-[depth] trees on (features,
    target) pairs. *)
val fit : ?rounds:int -> ?depth:int -> ?eta:float -> float array array -> float array -> t
