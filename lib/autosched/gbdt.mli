(** Gradient-boosted regression trees, from scratch: the stand-in for the
    paper's XGBoost cost model (§4.4). Depth-limited exact-greedy trees
    under either a squared loss ([fit]) or a LambdaRank-style pairwise
    rank loss ([fit_rank]). *)

type tree

type t = { trees : tree list; eta : float; base : float }

val predict : t -> float array -> float

(** Predict a whole population in one pass over the ensemble; identical
    values to mapping [predict] over the rows. *)
val predict_batch : t -> float array array -> float array

(** Fit [rounds] boosting rounds of depth-[depth] trees on (features,
    target) pairs — least-squares regression on the raw labels. *)
val fit : ?rounds:int -> ?depth:int -> ?eta:float -> float array array -> float array -> t

(** Fit a pairwise ranking ensemble: labels are compared only within a
    group ([groups.(i)] is sample [i]'s group id), each round pushes
    logistic pairwise gradients weighted by the label gap, and the next
    tree fits those pseudo-residuals. Absolute outputs are meaningless
    (base 0) — only the induced order matters. Deterministic: sample
    order and group ids fully determine the ensemble. *)
val fit_rank :
  ?rounds:int ->
  ?depth:int ->
  ?eta:float ->
  float array array ->
  float array ->
  groups:int array ->
  t

exception Parse_error of string

(** Versioned text form of an ensemble ([%h] floats): save -> load ->
    save is bit-identical. *)
val to_string : t -> string

(** Inverse of [to_string]; raises {!Parse_error} on malformed input. *)
val of_string : string -> t
