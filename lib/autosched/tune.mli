(** Tuning driver: the end-to-end auto-scheduler of section 4 — candidate
    generation, sketch generation, evolutionary search, plus the §5.2
    tuning-record database integration. *)

module W = Tir_workloads.Workloads
module TI = Tir_intrin.Tensor_intrin

type result = {
  workload : W.t;
  target : Tir_sim.Target.t;
  best : Evolutionary.measured option;
  stats : Evolutionary.stats;
  model : Model.t option;
      (** the trained cost model, when a search actually ran ([None] on
          the database-replay short-circuit) — persist it with
          [Model.Store.absorb] to warm-start later runs *)
}

val latency_us : result -> float

(** GFLOP/s of the best program; exactly [0.0] when no candidate was found
    or its latency is non-finite or non-positive (never NaN/infinity). *)
val gflops : result -> float

(** Compute intrinsics available on a target. *)
val target_intrinsics : Tir_sim.Target.t -> TI.t list

(** Tuning configuration: one explicit record instead of the optional
    argument pile. Build with {!Config.default} and the [with_*]
    setters:
    {[
      Tune.Config.default
      |> Tune.Config.with_trials 128
      |> Tune.Config.with_database db
    ]} *)
module Config : sig
  type t = {
    seed : int;
    trials : int;
    use_cost_model : bool;  (** [false] ranks candidates randomly *)
    evolve : bool;  (** [false] disables mutation/crossover *)
    sketches : Sketch.t list option;
        (** overrides sketch generation (baseline schedulers) *)
    database : Database.t option;
        (** replay store: stored schedules short-circuit the search,
            fresh results are committed back *)
    jobs : int option;
        (** size of a private domain pool for this call; [None] shares
            the process-wide [TIR_JOBS]-sized pool *)
    journal : Tir_obs.Journal.sink option;
    retry : Tir_parallel.Retry.policy;
        (** measurement fault retries + per-candidate budget *)
    model : Model.spec;
        (** which cost model ranks candidates: a fresh learner
            ([Model.Gbdt], the default), the analytic prior, or a
            warm-start snapshot ([Model.Warm]) carried over from earlier
            runs *)
  }

  (** seed 42, 64 trials, cost model + evolution on, no sketches /
      database / journal override, shared pool, [Retry.default], a fresh
      [Model.Gbdt]. *)
  val default : t

  val with_seed : int -> t -> t
  val with_trials : int -> t -> t
  val with_use_cost_model : bool -> t -> t
  val with_evolve : bool -> t -> t
  val with_sketches : Sketch.t list -> t -> t
  val with_database : Database.t -> t -> t
  val with_jobs : int -> t -> t
  val with_journal : Tir_obs.Journal.sink -> t -> t
  val with_retry : Tir_parallel.Retry.policy -> t -> t
  val with_model : Model.spec -> t -> t
end

(** A tuning run as an explicit state machine over {!Engine}: {!prepare}
    sets it up (journal [Run_start], sketch generation, database-replay
    short-circuit), each {!step} runs one search generation, and the
    first [Finished] transition commits the best schedule to the
    database, closes the journal, and joins the driver's private pool.
    {!run} drives one to completion; [Tir_service.Scheduler] interleaves
    many on one shared pool. *)
type driver

type progress =
  | Stepped of {
      gen : int;
      trials_done : int;
      best_us : float;
      rank_corr : float;
          (** cumulative model rank correlation ([Engine.rank_corr]) *)
    }
      (** one more generation committed; [best_us] is NaN until something
          measured *)
  | Finished of result

(** [pool] overrides [Config.jobs] with an externally owned pool (the
    caller keeps ownership and must shut it down); without it,
    [Config.jobs = Some j] creates a private pool owned by the driver.
    [checkpoint]/[resume] as in {!run}. *)
val prepare :
  ?checkpoint:Evolutionary.checkpoint ->
  ?resume:Evolutionary.resume ->
  ?pool:Tir_parallel.Pool.t ->
  Config.t ->
  W.t ->
  Tir_sim.Target.t ->
  driver

(** Advance by one generation. Idempotent once [Finished]: later calls
    return the same result without doing work. *)
val step : driver -> progress

(** Join the driver's private pool, if it still owns one. Called
    automatically by the [Finished] transition; exception paths that
    abandon a driver mid-run must call it explicitly. Idempotent. *)
val release : driver -> unit

(** Tune a workload under a {!Config.t}. Results are bit-identical at any
    job count for a fixed seed.

    Phases run under [Tir_obs.Span]s ([tune.sketch_gen], [tune.db_replay],
    [tune.search]). [Config.journal] receives the run's event stream:
    [Run_start], the per-generation search events, this call's spans, a
    metrics-registry dump, and [Run_end]. Journal counter content is
    bit-identical at any job count; only span durations and time-derived
    gauges vary.

    [checkpoint]/[resume] wire the search's write-ahead hooks
    ([Evolutionary.checkpoint]/[resume]); the crash-safe on-disk log
    built on them lives in the [Tir_service.Session] layer. A resumed
    call skips the database-replay short-circuit. *)
val run :
  ?checkpoint:Evolutionary.checkpoint ->
  ?resume:Evolutionary.resume ->
  Config.t ->
  W.t ->
  Tir_sim.Target.t ->
  result

(** Simulated end-to-end tuning time in minutes (profiling plus search
    overhead) — the Table 1 quantity. *)
val tuning_minutes : result -> float
