(** Tuning driver: the end-to-end auto-scheduler of section 4 — candidate
    generation, sketch generation, evolutionary search, plus the §5.2
    tuning-record database integration. *)

module W = Tir_workloads.Workloads
module TI = Tir_intrin.Tensor_intrin

type result = {
  workload : W.t;
  target : Tir_sim.Target.t;
  best : Evolutionary.measured option;
  stats : Evolutionary.stats;
}

val latency_us : result -> float

(** GFLOP/s of the best program; exactly [0.0] when no candidate was found
    or its latency is non-finite or non-positive (never NaN/infinity). *)
val gflops : result -> float

(** Compute intrinsics available on a target. *)
val target_intrinsics : Tir_sim.Target.t -> TI.t list

(** Tune a workload. [sketches] overrides sketch generation (baselines);
    [database] replays a stored schedule when available and commits fresh
    results; [jobs] sizes a private domain pool for this call (default:
    the shared [TIR_JOBS]-sized pool). Results are bit-identical at any
    job count for a fixed seed.

    Phases run under [Tir_obs.Span]s ([tune.sketch_gen], [tune.db_replay],
    [tune.search]). [journal] receives the run's event stream:
    [Run_start], the per-generation search events, this call's spans, a
    metrics-registry dump, and [Run_end]. Journal counter content is
    bit-identical at any job count; only span durations and time-derived
    gauges vary. *)
val tune :
  ?seed:int ->
  ?trials:int ->
  ?use_cost_model:bool ->
  ?evolve:bool ->
  ?sketches:Sketch.t list ->
  ?database:Database.t ->
  ?jobs:int ->
  ?journal:Tir_obs.Journal.sink ->
  Tir_sim.Target.t ->
  W.t ->
  result

(** Simulated end-to-end tuning time in minutes (profiling plus search
    overhead) — the Table 1 quantity. *)
val tuning_minutes : result -> float
