(** Tuning driver: the end-to-end auto-scheduler of section 4 — candidate
    generation, sketch generation, evolutionary search, plus the §5.2
    tuning-record database integration. *)

module W = Tir_workloads.Workloads
module TI = Tir_intrin.Tensor_intrin

type result = {
  workload : W.t;
  target : Tir_sim.Target.t;
  best : Evolutionary.measured option;
  stats : Evolutionary.stats;
}

val latency_us : result -> float
val gflops : result -> float

(** Compute intrinsics available on a target. *)
val target_intrinsics : Tir_sim.Target.t -> TI.t list

(** Tune a workload. [sketches] overrides sketch generation (baselines);
    [database] replays a stored schedule when available and commits fresh
    results; [jobs] sizes a private domain pool for this call (default:
    the shared [TIR_JOBS]-sized pool). Results are bit-identical at any
    job count for a fixed seed. *)
val tune :
  ?seed:int ->
  ?trials:int ->
  ?use_cost_model:bool ->
  ?evolve:bool ->
  ?sketches:Sketch.t list ->
  ?database:Database.t ->
  ?jobs:int ->
  Tir_sim.Target.t ->
  W.t ->
  result

(** Simulated end-to-end tuning time in minutes (profiling plus search
    overhead) — the Table 1 quantity. *)
val tuning_minutes : result -> float
