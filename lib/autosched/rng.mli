(** Deterministic PRNG: every random decision in the search flows through a
    seeded state, so tuning runs are bit-reproducible. *)

type t = Random.State.t

val create : int -> t

(** Independent stream for search generation [gen] under [seed] — a pure
    function of [(seed, gen)], so a resumed search re-enters any
    generation with bit-identical randomness and no serialized PRNG
    state. *)
val for_generation : seed:int -> gen:int -> t
val int : t -> int -> int
val float : t -> float -> float
val bool : t -> bool

(** Uniform choice from a non-empty list. *)
val choose : t -> 'a list -> 'a

(** Split off an independent stream. *)
val split : t -> t

(** [split_n t n] draws [n] independent streams sequentially from [t]
    (one per parallel task slot). *)
val split_n : t -> int -> t array
