(** Tuning-record database (paper §5.2): caching search records so "no
    search is needed to build a model for an operator already tuned".

    Records carry the full instruction trace of the winning schedule, so
    [replay] works from the trace alone — no sketch regeneration — and
    records stay portable across search-space versions. On-disk format v2
    is line-oriented with percent-escaped fields (names containing the
    field separator cannot inject fields); headerless v1 files
    ([target|workload|sketch|decisions|latency_us]) still load, yielding
    traceless records that replay through the sketch path. *)

type record = {
  target_name : string;
  workload_name : string;
  sketch_name : string;
  base : string;  (** [Sketch.base]: intrinsic name of the tensorization
                      candidate the schedule starts from, or [""] *)
  decisions : Space.decisions;
  latency_us : float;
  trace : Tir_sched.Trace.t option;
      (** [None] only for records loaded from v1 files *)
}

type t

val create : unit -> t

(** Best record for a (target, workload), if any. *)
val find : t -> target_name:string -> workload_name:string -> record option

val add : t -> record -> unit
val size : t -> int

(** Write the v2 format (with version header), atomically: the snapshot
    is written to [path ^ ".tmp"] and renamed into place, so a crash
    mid-save leaves the previous file intact. Under fault injection
    (site [Db_write] of [Tir_core.Fault]) each line write retries
    injected failures; exhaustion raises [Tir_core.Error.Error] with
    kind [Fault]. *)
val save : t -> string -> unit

(** Load from disk; a missing file yields an empty database. Reads v2
    (version header present) and v1 (headerless) files. A torn trailing
    line (crash mid-append: no final newline, unparseable) is dropped
    and counted ([db.torn_dropped]); newline-terminated garbage still
    raises — that is corruption, not a torn write. *)
val load : string -> t

(** [load] through the unified error surface: [Io] when the filesystem
    refuses, [Corrupt] when a complete line violates the format. *)
val load_result : string -> (t, Tir_core.Error.t) result

(** {2 Line codec}

    The v2 serialization discipline, shared with the session WAL: every
    field percent-escapes ['%'], ['|'], newlines, [','] and ['=']. *)

val escape : string -> string
val unescape : string -> string

(** One v2 record line (no trailing newline). *)
val record_to_line : record -> string

(** Parse one v2 record line; raises [Failure] (or
    [Tir_sched.Trace.Parse_error] for a bad trace field) on malformed
    input. *)
val record_of_line_v2 : string -> record

(** The function a record's trace was applied to: the workload's func for
    scalar sketches, or the tensorization candidate's canonical program
    for [base = <intrinsic name>]. [None] if the intrinsic is unknown or
    yields no candidate — the session resume path and [replay] both
    rebuild programs through this. *)
val base_func : Tir_workloads.Workloads.t -> string -> Tir_ir.Primfunc.t option

(** Record the best result of a tuning run, trace included. *)
val commit :
  t -> Tir_sim.Target.t -> Tir_workloads.Workloads.t -> Evolutionary.measured -> unit

(** Replay a stored record: trace-first (rebuild the start function from
    the workload and the record's [base], re-apply every instruction,
    re-validate, measure once), falling back to re-applying the recorded
    decisions through [sketches] for traceless v1 records. [None] if
    neither path yields a valid, measurable schedule. *)
val replay :
  Tir_sim.Target.t ->
  workload:Tir_workloads.Workloads.t ->
  sketches:Sketch.t list ->
  record ->
  Evolutionary.measured option

(** [(found, replayed)]: replays attempted, and replays that succeeded
    from the serialized trace alone (bench hit-rate reporting). *)
val replay_counters : unit -> int * int

val reset_replay_counters : unit -> unit
