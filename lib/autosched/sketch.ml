(** Tensorized program sketch generation (paper §4.3, Figure 8).

    A sketch fixes the structure — tiling scheme, tensorized inner block,
    AutoCopy data-movement blocks — and exposes knobs (tile sizes,
    cooperative-fetch vectorization, unrolling) that the evolutionary search
    fills in. Data movement is scheduled by a dedicated routine
    ([autocopy_*]), decoupled from the compute schedule, reflecting the
    paper's "data movement as first-class citizen" design.

    Four sketch families:
    - [tensorized_gpu]: Tensor-Core style — block/warp tiling, shared-memory
      staging with cooperative fetch, wmma fragment loads/stores via
      data-movement intrinsics, tensorized inner block;
    - [scalar_gpu]: Ansor-style multi-level tiling without tensorization
      (used for non-tensorizable workloads and as the TVM baseline);
    - [tensorized_cpu]: ARM sdot micro-kernel tiling with register packing;
    - [scalar_cpu]: parallel+vectorize loop tiling. *)

open Tir_ir
module S = Tir_sched.Schedule
module W = Tir_workloads.Workloads
module TI = Tir_intrin.Tensor_intrin

type t = {
  name : string;
  space_id : string;
      (** cache identity: qualifies [name] with the workload's display
          name, a digest of its printed lowered func, and the
          sketch-variant flags. The digest covers everything the display
          name can omit — buffer shapes, dtypes, and the index arithmetic
          encoding strides/pads/dilation — so the id is injective over
          (workload, sketch variant) regardless of naming conventions.
          Measurement memo keys are [space_id | decisions]; a collision
          would silently return another program's latency. *)
  base : string;
      (** how to rebuild the function the sketch schedules from the bare
          workload: the tensorization candidate's intrinsic name, or [""]
          when the sketch starts from [w.func] directly. Stored in database
          records so a trace can be replayed without regenerating the
          sketch. *)
  knobs : Space.knob list;
  rejects : Space.decisions -> bool;
      (** cheap pre-filter: [true] when the decision vector is provably
          inapplicable from the knob values alone — it mirrors {e exactly}
          the explicit early guard checks [apply] performs before
          transforming anything (warp count, thread range, degenerate
          parallelism), so a rejected vector is precisely one [apply] would
          have raised [Schedule_error] on. The evaluator short-circuits
          these to [Inapplicable] without materializing a program. Silent
          in-schedule fallbacks (e.g. vectorization-width demotion) are
          deliberately {e not} mirrored: they produce valid programs. *)
  apply : Space.decisions -> Tir_sched.Schedule.t;
      (** returns the schedule (its trace is the replayable script of
          everything applied, [Decide] records included). Raises
          [Tir_sched.State.Schedule_error] on an inapplicable decision
          vector — the search treats that as an invalid sample — and
          [Space.Unknown_knob] on a vector missing one of [knobs]. *)
}

(* Workload identity independent of naming conventions: the structural
   fingerprint covers every buffer shape, dtype and index expression —
   exactly what the printed lowered func spells out — so two workloads
   fingerprint equal iff they lower to the same program. One tree walk;
   replaces MD5-of-printed-script at a fraction of the cost. *)
let workload_digest (f : Primfunc.t) = Fingerprint.to_hex (Fingerprint.func f)

let make_space_id ?(variant = "") name (w : W.t) =
  name ^ "@" ^ w.W.name ^ "#" ^ workload_digest w.W.func
  ^ if String.equal variant "" then "" else ":" ^ variant

let split2 t v ~factors =
  match S.split t v ~factors with [ a; b ] -> (a, b) | _ -> assert false

let split_list t v ~factors = S.split t v ~factors

let knob name choices = { Space.name; count = List.length choices }

(* Fetch a decision's value out of an alternatives list. Strict: a knob
   name absent from the vector raises [Space.Unknown_knob] instead of
   silently taking choice 0. *)
let pick (d : Space.decisions) name choices = List.nth choices (Space.decide_exn d name)

(* Record the complete knob vector on the schedule trace, in knob-list
   order. The trace then carries the full decision assignment
   ([Trace.decisions]), making a serialized trace self-contained for
   database replay. Strict lookup, so a stale or mistyped vector fails
   loudly here rather than scheduling wrongly.

   Sketches call this {e last}, after all transformations: two vectors
   differing in one knob then share every trace instruction up to the
   first transform that consumes the differing knob, so the apply cache
   replays the shared prefix in O(1). (Decide instructions placed first
   would make every distinct vector diverge at instruction 0.) Replay of
   old decide-first traces still works — [Trace.decisions] is
   position-independent. *)
let record_decisions t knobs (d : Space.decisions) =
  List.iter
    (fun (k : Space.knob) -> S.record_decision t k.Space.name (Space.decide_exn d k.Space.name))
    knobs

let last_loops t block n =
  let loops = S.get_loops t block in
  let len = List.length loops in
  List.filteri (fun i _ -> i >= len - n) loops

(* ---------------------------------------------------------------- *)
(* AutoCopy: schedule a data-movement block (paper §4.3).            *)
(* ---------------------------------------------------------------- *)

(* Cooperative fetch on GPU: fuse the copy block's loops, distribute over
   the thread hierarchy, vectorize the innermost elements. *)
let autocopy_gpu t block_name ~warps ~lanes ~vec =
  let loops = S.get_loops t block_name in
  (* Only fuse the loops this block owns (generated by compute_at): they
     are the trailing loops enclosing it that no other block shares. We
     conservatively fuse the loops whose extent product equals the block's
     iteration count; compute_at regenerates exactly those as the innermost
     loops. *)
  let own =
    let b = S.get_block t block_name in
    let n = List.length b.Stmt.iter_vars in
    let len = List.length loops in
    List.filteri (fun i _ -> i >= len - n) loops
  in
  let fused = S.fuse_many t own in
  let total = S.loop_extent t fused in
  let vec = if total mod (warps * lanes * vec) = 0 then vec else 1 in
  if total mod (warps * lanes * vec) = 0 then begin
    let rest, v =
      if vec > 1 then split2 t fused ~factors:[ 0; vec ] else (fused, fused)
    in
    let rest, tx = split2 t rest ~factors:[ 0; lanes ] in
    let _rest, ty = split2 t rest ~factors:[ 0; warps ] in
    S.bind t ty "threadIdx.y";
    S.bind t tx "threadIdx.x";
    if vec > 1 then S.vectorize t v
  end
  else begin
    (* Fallback: lane-distribute only. *)
    if total mod lanes = 0 then begin
      let _rest, tx = split2 t fused ~factors:[ 0; lanes ] in
      S.bind t tx "threadIdx.x"
    end
  end

(* CPU packing copy: vectorize the innermost loop. *)
let autocopy_cpu t block_name ~vec =
  let loops = S.get_loops t block_name in
  match List.rev loops with
  | inner :: _ ->
      let ext = S.loop_extent t inner in
      if vec > 1 && ext mod vec = 0 then begin
        let _, v = split2 t inner ~factors:[ 0; vec ] in
        S.vectorize t v
      end
      else if ext <= 16 then S.vectorize t inner
  | [] -> ()

(* Tensorize a 2-D tile copy block (wmma load/store) whose trailing two
   loops span multiples of (tm, tn). *)
let tensorize_copy t block_name intrin_name ~tm ~tn =
  match last_loops t block_name 2 with
  | [ rows; cols ] ->
      let re = S.loop_extent t rows and ce = S.loop_extent t cols in
      if re mod tm = 0 && ce mod tn = 0 then begin
        let ro, ri = split2 t rows ~factors:[ 0; tm ] in
        let co, ci = split2 t cols ~factors:[ 0; tn ] in
        S.reorder t [ ro; co; ri; ci ];
        ignore (S.tensorize t ri intrin_name);
        ignore (ro, co)
      end
      else Tir_sched.State.err "tensorize_copy: tile (%d,%d) does not divide (%d,%d)" tm tn re ce
  | _ -> Tir_sched.State.err "tensorize_copy: block %s has fewer than 2 loops" block_name

(* ---------------------------------------------------------------- *)
(* GPU tensorized sketch                                              *)
(* ---------------------------------------------------------------- *)

let tensorized_gpu ?(use_wmma_scopes = true) ?(stage_shared = true)
    ?(pipeline = false) ?(simple_copy = false) (cand : Candidate.t) : t =
  let intrin = cand.Candidate.intrin in
  let im, ik, in_ =
    match intrin.TI.desc_params with
    | [ a; b; _ ] -> (
        match (a.Buffer.shape, b.Buffer.shape) with
        | [ m; k ], [ _; n ] -> (m, k, n)
        | _ -> assert false)
    | _ -> assert false
  in
  let m_splits = Space.factor_splits (cand.Candidate.fm / im) 3 in
  let n_splits = Space.factor_splits (cand.Candidate.fn / in_) 3 in
  let k_splits = Space.factor_splits (cand.Candidate.fk / ik) 2 in
  let knobs =
    [
      knob "m" m_splits;
      knob "n" n_splits;
      knob "k" k_splits;
      knob "vec" [ 1; 2; 4; 8 ];
      knob "unroll" [ 0; 1 ];
    ]
  in
  (* Mirrors exactly the guard checks below: a rejected vector is one
     [apply] would have raised on before transforming anything. *)
  let rejects (d : Space.decisions) =
    let m0, m1, _ =
      match pick d "m" m_splits with [ a; b; c ] -> (a, b, c) | _ -> assert false
    in
    let n0, n1, _ =
      match pick d "n" n_splits with [ a; b; c ] -> (a, b, c) | _ -> assert false
    in
    m1 * n1 > 16 || (m0 * n0 = 1 && cand.Candidate.outer_dims = 0)
  in
  let apply (d : Space.decisions) =
    let t = S.create_cached cand.Candidate.func in
    (* ReIndex upstream stages (padding etc.) fold into the copy-in blocks. *)
    List.iter (fun b -> S.compute_inline t b) cand.Candidate.pre_blocks;
    let cb = cand.Candidate.compute_block in
    let m0, m1, m2 =
      match pick d "m" m_splits with [ a; b; c ] -> (a, b, c) | _ -> assert false
    in
    let n0, n1, n2 =
      match pick d "n" n_splits with [ a; b; c ] -> (a, b, c) | _ -> assert false
    in
    let k0, k1 =
      match pick d "k" k_splits with [ a; b ] -> (a, b) | _ -> assert false
    in
    let warps = m1 * n1 in
    if warps > 16 then Tir_sched.State.err "too many warps (%d)" warps;
    if m0 * n0 = 1 && cand.Candidate.outer_dims = 0 then
      Tir_sched.State.err "no block-level parallelism";
    (* --- compute tiling --- *)
    let loops = S.get_loops t cb in
    let outer, mnk =
      let len = List.length loops in
      ( List.filteri (fun i _ -> i < len - 3) loops,
        List.filteri (fun i _ -> i >= len - 3) loops )
    in
    let fm, fn, fk = match mnk with [ a; b; c ] -> (a, b, c) | _ -> assert false in
    let ms = split_list t fm ~factors:[ m0; m1; m2; im ] in
    let ns = split_list t fn ~factors:[ n0; n1; n2; in_ ] in
    let ks = split_list t fk ~factors:[ k0; k1; ik ] in
    let l i xs = List.nth xs i in
    (* Block tile loops, then the outer reduction (so the shared staging sits
       above the warp binding), then warps, then the warp-level tile. *)
    S.reorder t
      [
        l 0 ms; l 0 ns; l 0 ks; l 1 ms; l 1 ns; l 1 ks; l 2 ms; l 2 ns; l 3 ms;
        l 3 ns; l 2 ks;
      ];
    let bx = S.fuse_many t (outer @ [ l 0 ms; l 0 ns ]) in
    let ty = S.fuse_many t [ l 1 ms; l 1 ns ] in
    S.bind t bx "blockIdx.x";
    S.bind t ty "threadIdx.y";
    ignore ty;
    if pick d "unroll" [ 0; 1 ] = 1 then begin
      S.unroll t (l 2 ms);
      S.unroll t (l 2 ns)
    end;
    if pipeline then S.annotate t (l 0 ks) "software_pipeline" "2";
    (* --- accumulator fragment --- *)
    let c_t_buf =
      match (S.get_block t cb).Stmt.writes with
      | [ w ] -> w.Stmt.buffer
      | _ -> assert false
    in
    let acc_scope = if use_wmma_scopes then "wmma.accumulator" else "local" in
    let cwb = S.cache_write t cb c_t_buf acc_scope in
    (* When the write-back block reads C_t trivially (one iterator per
       dimension, e.g. GMM), the whole epilogue fuses into the kernel and
       C_t is demoted to a per-block shared tile. Convolutions read C_t
       through fused (divmod) indices; there C_t stays in global memory and
       the write-back runs as its own kernel — the extra traffic is exactly
       the layout-rewrite round-trip TVM pays in the same situation. *)
    let wb_trivial =
      List.for_all
        (fun (r : Stmt.buffer_region) ->
          (not (Buffer.equal r.buffer c_t_buf))
          || List.for_all
               (fun (mn, ext) -> match mn with Expr.Var _ -> ext = 1 | _ -> false)
               r.region)
        (S.get_block t cand.Candidate.writeback_block).Stmt.reads
    in
    if wb_trivial then ignore (S.set_scope t c_t_buf "shared");
    (* Accumulator write-out: per-warp fragment -> shared tile after the
       whole reduction, then a cooperative shared -> global write-back. *)
    S.reverse_compute_at t cwb bx;
    (match last_loops t cwb 2 with
    | [ rows; cols ] ->
        let tyr, _rr = split2 t rows ~factors:[ m1; 0 ] in
        let tyc, _cc = split2 t cols ~factors:[ n1; 0 ] in
        S.reorder t [ tyr; tyc; _rr; _cc ];
        let ty2 = S.fuse t tyr tyc in
        S.bind t ty2 "threadIdx.y"
    | _ -> Tir_sched.State.err "accumulator write-out has fewer than 2 loops");
    if wb_trivial then S.reverse_compute_at t cand.Candidate.writeback_block bx;
    (* --- operand staging: global -> shared (cooperative), shared -> frag.
       Staged while the compute block still reads the layout buffers; the
       fragment copies are tensorized after the compute is. --- *)
    let a_t_name, b_t_name =
      match cand.Candidate.copy_in_blocks with
      | [ a; b ] -> (a, b)
      | _ -> assert false
    in
    let stage copy_name frag_scope =
      let buf =
        match (S.get_block t copy_name).Stmt.writes with
        | [ w ] -> w.Stmt.buffer
        | _ -> assert false
      in
      if stage_shared then begin
        let buf = S.set_scope t buf "shared" in
        S.compute_at t copy_name (l 0 ks);
        let vec = if simple_copy then 1 else pick d "vec" [ 1; 2; 4; 8 ] in
        autocopy_gpu t copy_name ~warps ~lanes:32 ~vec;
        let frag = S.cache_read t cb buf frag_scope in
        S.compute_at t frag (l 1 ks);
        frag
      end
      else begin
        (* AMOS-style: no shared staging; fragments filled straight from the
           layout stage (which stays in global memory). *)
        let frag = S.cache_read t cb buf frag_scope in
        S.compute_at t frag (l 1 ks);
        frag
      end
    in
    let a_frag = stage a_t_name (if use_wmma_scopes then "wmma.matrix_a" else "local") in
    let b_frag = stage b_t_name (if use_wmma_scopes then "wmma.matrix_b" else "local") in
    (* --- reduction init --- *)
    ignore (S.decompose_reduction t cb (l 0 ks));
    (* --- tensorize compute and data movement --- *)
    ignore (S.tensorize t (l 3 ms) intrin.TI.name);
    if use_wmma_scopes then begin
      tensorize_copy t a_frag "wmma.load_a" ~tm:im ~tn:ik;
      tensorize_copy t b_frag "wmma.load_b" ~tm:ik ~tn:in_;
      (* The store intrinsic targets shared memory only. *)
      if wb_trivial then tensorize_copy t cwb "wmma.store" ~tm:im ~tn:in_
    end;
    (* --- write-back: fused epilogue or standalone layout kernel --- *)
    if wb_trivial then
      autocopy_gpu t cand.Candidate.writeback_block ~warps ~lanes:32
        ~vec:(pick d "vec" [ 1; 2; 4; 8 ])
    else begin
      let loops = S.get_loops t cand.Candidate.writeback_block in
      let fused = S.fuse_many t loops in
      let total = S.loop_extent t fused in
      let vec = pick d "vec" [ 1; 2; 4; 8 ] in
      let vec = if total mod (128 * vec) = 0 then vec else 1 in
      if total mod (128 * vec) = 0 then begin
        let rest, v =
          if vec > 1 then split2 t fused ~factors:[ 0; vec ] else (fused, fused)
        in
        let bx', tx = split2 t rest ~factors:[ 0; 128 ] in
        S.bind t bx' "blockIdx.x";
        S.bind t tx "threadIdx.x";
        if vec > 1 then S.vectorize t v
      end
      else begin
        let bx', tx = split2 t fused ~factors:[ 0; 32 ] in
        S.bind t bx' "blockIdx.x";
        S.bind t tx "threadIdx.x"
      end
    end;
    record_decisions t knobs d;
    t
  in
  let name = "tensorized-gpu:" ^ intrin.TI.name in
  let variant =
    Printf.sprintf "wmma%c-sh%c-pipe%c-simple%c"
      (if use_wmma_scopes then '1' else '0')
      (if stage_shared then '1' else '0')
      (if pipeline then '1' else '0')
      (if simple_copy then '1' else '0')
  in
  {
    name;
    space_id = make_space_id ~variant name cand.Candidate.workload;
    base = intrin.TI.name;
    knobs;
    rejects;
    apply;
  }

(* ---------------------------------------------------------------- *)
(* GPU scalar (Ansor-style) sketch                                    *)
(* ---------------------------------------------------------------- *)

(* Ansor-style multi-level tiling on the fused iteration space: S is split
   into block / thread / serial / vector levels, R into two levels, with an
   optional shared-memory stage for the inputs (cooperative fetch) and a
   local accumulator — the search space of the loop-oriented compilers the
   paper compares against, with no tensorization. *)
let scalar_gpu ?(allow_shared = true) (w : W.t) : t =
  let out_block = (Te.buffer w.W.out).Buffer.name in
  let shape = Te.shape w.W.out in
  (* Keep the innermost (channel) axis separate from the fused outer
     spatial space: threads and vector lanes run along it, so global
     accesses coalesce — the shape real Ansor conv schedules take. *)
  let chan = List.nth shape (List.length shape - 1) in
  let outer_total = List.fold_left ( * ) 1 shape / chan in
  let reduce_total =
    match w.W.out.Te.kind with
    | Te.Reduce { rdom; _ } -> List.fold_left ( * ) 1 rdom
    | _ -> 1
  in
  let f_splits = Space.factor_splits ~max_factor:256 outer_total 3 in
  let c_splits =
    List.filter
      (fun cs -> match cs with [ _; _; v ] -> v <= 4 | _ -> false)
      (Space.factor_splits ~max_factor:256 chan 3)
  in
  let c_splits = if c_splits = [] then Space.factor_splits ~max_factor:256 chan 3 else c_splits in
  let r_splits = Space.factor_splits ~max_factor:256 reduce_total 2 in
  let knobs =
    [
      knob "f" f_splits;
      knob "c" c_splits;
      knob "r" r_splits;
      knob "shared" (if allow_shared then [ 0; 1 ] else [ 0 ]);
      knob "unroll" [ 0; 1 ];
    ]
  in
  let rejects d =
    let f0, f1, _ =
      match pick d "f" f_splits with [ a; b; c ] -> (a, b, c) | _ -> assert false
    in
    let c0, c1, _ =
      match pick d "c" c_splits with [ a; b; c ] -> (a, b, c) | _ -> assert false
    in
    let threads = f1 * c1 in
    threads > 1024 || threads < 32 || f0 * c0 = 1
  in
  let apply d =
    let t = S.create_cached w.W.func in
    (* Inline padding stages into the consumer. *)
    List.iter
      (fun (br : Stmt.block_realize) ->
        let n = br.block.Stmt.name in
        if not (String.equal n out_block) then S.compute_inline t n)
      (Primfunc.blocks (S.func t));
    let f0, f1, f2 =
      match pick d "f" f_splits with [ a; b; c ] -> (a, b, c) | _ -> assert false
    in
    let c0, c1, c2 =
      match pick d "c" c_splits with [ a; b; c ] -> (a, b, c) | _ -> assert false
    in
    let r0, r1 =
      match pick d "r" r_splits with [ a; b ] -> (a, b) | _ -> assert false
    in
    let threads = f1 * c1 in
    if threads > 1024 || threads < 32 then
      Tir_sched.State.err "thread count %d out of range" threads;
    if f0 * c0 = 1 then Tir_sched.State.err "no block-level parallelism";
    let b = S.get_block t out_block in
    let n_spatial =
      List.length
        (List.filter (fun (iv : Stmt.iter_var) -> iv.itype = Stmt.Spatial) b.Stmt.iter_vars)
    in
    let loops = S.get_loops t out_block in
    let spatial = List.filteri (fun i _ -> i < n_spatial) loops in
    let reduce = List.filteri (fun i _ -> i >= n_spatial) loops in
    let chan_loop = List.nth spatial (n_spatial - 1) in
    let outer_spatial = List.filteri (fun i _ -> i < n_spatial - 1) spatial in
    let fo =
      match outer_spatial with
      | [] -> Tir_sched.State.err "single-axis output unsupported by scalar sketch"
      | [ v ] -> v
      | vs -> S.fuse_many t vs
    in
    let fs = split_list t fo ~factors:[ f0; f1; f2 ] in
    let cs = split_list t chan_loop ~factors:[ c0; c1; c2 ] in
    let l i xs = List.nth xs i in
    let rs =
      if reduce = [] then []
      else
        let fr = S.fuse_many t reduce in
        split_list t fr ~factors:[ r0; r1 ]
    in
    (match rs with
    | [ ra; rb ] ->
        S.reorder t [ l 0 fs; l 0 cs; ra; l 1 fs; l 1 cs; rb; l 2 fs; l 2 cs ]
    | _ -> S.reorder t [ l 0 fs; l 0 cs; l 1 fs; l 1 cs; l 2 fs; l 2 cs ]);
    let bx = S.fuse t (l 0 fs) (l 0 cs) in
    let tx = S.fuse t (l 1 fs) (l 1 cs) in
    S.bind t bx "blockIdx.x";
    S.bind t tx "threadIdx.x";
    if c2 > 1 then S.vectorize t (l 2 cs);
    if pick d "unroll" [ 0; 1 ] = 1 then S.unroll t (l 2 fs);
    (* Local accumulator: write-back after the reduction per thread. *)
    let out_buf =
      match (S.get_block t out_block).Stmt.writes with
      | [ wr ] -> wr.Stmt.buffer
      | _ -> Tir_sched.State.err "expected one write"
    in
    (if rs <> [] then begin
       let cwb = S.cache_write t out_block out_buf "local" in
       S.reverse_compute_at t cwb tx;
       ignore (S.decompose_reduction t out_block (List.nth rs 0))
     end);
    (* Shared staging of the inputs with cooperative fetch. *)
    if pick d "shared" [ 0; 1 ] = 1 && rs <> [] then begin
      let inputs =
        List.filter_map
          (fun (r : Stmt.buffer_region) ->
            if String.equal r.buffer.Buffer.scope "global" then Some r.buffer else None)
          (S.get_block t out_block).Stmt.reads
      in
      List.iter
        (fun buf ->
          let copy = S.cache_read t out_block buf "shared" in
          S.compute_at t copy (List.nth rs 0);
          let own = last_loops t copy (Buffer.ndim buf) in
          let fused = S.fuse_many t own in
          let total = S.loop_extent t fused in
          if total mod threads = 0 then begin
            let _, txl = split2 t fused ~factors:[ 0; threads ] in
            S.bind t txl "threadIdx.x"
          end)
        inputs
    end;
    record_decisions t knobs d;
    t
  in
  let variant = if allow_shared then "sh1" else "sh0" in
  {
    name = "scalar-gpu";
    space_id = make_space_id ~variant "scalar-gpu" w;
    base = "";
    knobs;
    rejects;
    apply;
  }

(* ---------------------------------------------------------------- *)
(* CPU sketches                                                       *)
(* ---------------------------------------------------------------- *)

let tensorized_cpu (cand : Candidate.t) : t =
  let intrin = cand.Candidate.intrin in
  let im, ik, in_ =
    match intrin.TI.desc_params with
    | [ a; b; _ ] -> (
        match (a.Buffer.shape, b.Buffer.shape) with
        | [ m; k ], [ _; n ] -> (m, k, n)
        | _ -> assert false)
    | _ -> assert false
  in
  let m_splits = Space.factor_splits (cand.Candidate.fm / im) 2 in
  let n_splits = Space.factor_splits (cand.Candidate.fn / in_) 2 in
  let k_splits = Space.factor_splits (cand.Candidate.fk / ik) 2 in
  let knobs = [ knob "m" m_splits; knob "n" n_splits; knob "k" k_splits; knob "vec" [ 1; 4; 16 ] ] in
  let apply d =
    let t = S.create_cached cand.Candidate.func in
    List.iter (fun b -> S.compute_inline t b) cand.Candidate.pre_blocks;
    let cb = cand.Candidate.compute_block in
    let m0, m1 = match pick d "m" m_splits with [ a; b ] -> (a, b) | _ -> assert false in
    let n0, n1 = match pick d "n" n_splits with [ a; b ] -> (a, b) | _ -> assert false in
    let k0, k1 = match pick d "k" k_splits with [ a; b ] -> (a, b) | _ -> assert false in
    let loops = S.get_loops t cb in
    let outer, mnk =
      let len = List.length loops in
      ( List.filteri (fun i _ -> i < len - 3) loops,
        List.filteri (fun i _ -> i >= len - 3) loops )
    in
    let fm, fn, fk = match mnk with [ a; b; c ] -> (a, b, c) | _ -> assert false in
    let ms = split_list t fm ~factors:[ m0; m1; im ] in
    let ns = split_list t fn ~factors:[ n0; n1; in_ ] in
    let ks = split_list t fk ~factors:[ k0; k1; ik ] in
    let l i xs = List.nth xs i in
    S.reorder t
      [ l 0 ms; l 0 ns; l 0 ks; l 1 ms; l 1 ns; l 1 ks; l 2 ms; l 2 ns; l 2 ks ];
    let par = S.fuse_many t (outer @ [ l 0 ms; l 0 ns ]) in
    S.parallel t par;
    (* Accumulator register tile (the sdot micro-kernel accumulates in
       registers; "local" models that). *)
    let c_t_buf =
      match (S.get_block t cb).Stmt.writes with
      | [ w ] -> w.Stmt.buffer
      | _ -> assert false
    in
    let cwb = S.cache_write t cb c_t_buf "local" in
    S.reverse_compute_at t cwb (l 1 ns);
    autocopy_cpu t cwb ~vec:(pick d "vec" [ 1; 4; 16 ]);
    (* Register packing for the micro-kernel operands ("interleaved layout"
       requirement of §4.1). *)
    let a_t_name, b_t_name =
      match cand.Candidate.copy_in_blocks with [ a; b ] -> (a, b) | _ -> assert false
    in
    let vec = pick d "vec" [ 1; 4; 16 ] in
    (* Panel packing at the outer reduction level (BLIS-style): each packed
       panel is reused across the whole register-tile sweep rather than
       repacked per micro-kernel invocation. *)
    let pack name =
      let buf =
        match (S.get_block t name).Stmt.writes with
        | [ w ] -> w.Stmt.buffer
        | _ -> assert false
      in
      let buf = S.set_scope t buf "local" in
      S.compute_at t name (l 0 ks);
      autocopy_cpu t name ~vec;
      ignore buf
    in
    pack a_t_name;
    pack b_t_name;
    ignore (S.decompose_reduction t cb (l 0 ks));
    ignore (S.tensorize t (l 2 ms) intrin.TI.name);
    (* Write-back epilogue vectorized. *)
    autocopy_cpu t cand.Candidate.writeback_block ~vec:16;
    record_decisions t knobs d;
    t
  in
  let name = "tensorized-cpu:" ^ intrin.TI.name in
  {
    name;
    space_id = make_space_id name cand.Candidate.workload;
    base = intrin.TI.name;
    knobs;
    (* No knob-derived guard checks: every vector materializes. *)
    rejects = (fun _ -> false);
    apply;
  }

(* Multi-level CPU tiling on the fused iteration space: parallel outer,
   cache-level serial tile, register tile with vectorized lanes and a local
   accumulator — the quality bar of TVM's CPU auto-scheduler, without the
   tensor intrinsic. *)
let scalar_cpu (w : W.t) : t =
  let out_block = (Te.buffer w.W.out).Buffer.name in
  let shape = Te.shape w.W.out in
  let total = List.fold_left ( * ) 1 shape in
  let chan_total = List.nth shape (List.length shape - 1) in
  let outer_total = total / chan_total in
  (* When there is outer spatial extent, the channel axis carries the
     vector lanes and the rest is fused and tiled; degenerate outputs
     (e.g. a 1xN fully-connected layer) tile the channel axis itself. *)
  let sep = outer_total > 1 in
  let reduce_total =
    match w.W.out.Te.kind with
    | Te.Reduce { rdom; _ } -> List.fold_left ( * ) 1 rdom
    | _ -> 1
  in
  let s_splits =
    Space.factor_splits ~max_factor:64 (if sep then outer_total else chan_total) 3
  in
  let r_splits = Space.factor_splits ~max_factor:256 reduce_total 2 in
  let knobs = [ knob "s" s_splits; knob "r" r_splits; knob "vec" [ 0; 1 ] ] in
  let rejects d =
    match pick d "s" s_splits with [ s0; _; _ ] -> s0 = 1 | _ -> assert false
  in
  let apply d =
    let t = S.create_cached w.W.func in
    List.iter
      (fun (br : Stmt.block_realize) ->
        let n = br.block.Stmt.name in
        if not (String.equal n out_block) then S.compute_inline t n)
      (Primfunc.blocks (S.func t));
    let s0, s1, s2 =
      match pick d "s" s_splits with [ a; b; c ] -> (a, b, c) | _ -> assert false
    in
    let r0, r1 =
      match pick d "r" r_splits with [ a; b ] -> (a, b) | _ -> assert false
    in
    if s0 = 1 then Tir_sched.State.err "no parallelism";
    let b = S.get_block t out_block in
    let n_spatial =
      List.length
        (List.filter (fun (iv : Stmt.iter_var) -> iv.itype = Stmt.Spatial) b.Stmt.iter_vars)
    in
    let loops = S.get_loops t out_block in
    let spatial = List.filteri (fun i _ -> i < n_spatial) loops in
    let reduce = List.filteri (fun i _ -> i >= n_spatial) loops in
    (* Keep the channel axis for the vector lanes (contiguous NEON loads);
       fuse and tile the remaining spatial space. *)
    let chan_loop = List.nth spatial (n_spatial - 1) in
    let outer_spatial = List.filteri (fun i _ -> i < n_spatial - 1) spatial in
    let chan_ext = S.loop_extent t chan_loop in
    let fs =
      if not sep then chan_loop
      else
        match outer_spatial with
        | [ v ] -> v
        | vs -> S.fuse_many t vs
    in
    let ss = split_list t fs ~factors:[ s0; s1; s2 ] in
    let par = List.nth ss 0 and sc = List.nth ss 1 and sv = List.nth ss 2 in
    let vec_width = if chan_ext mod 16 = 0 then 16 else if chan_ext mod 8 = 0 then 8 else 1 in
    let co, cv =
      if sep && vec_width > 1 then
        let a, b' = split2 t chan_loop ~factors:[ 0; vec_width ] in
        (Some a, Some b')
      else (None, None)
    in
    let rs =
      if reduce = [] then []
      else
        let fr = S.fuse_many t reduce in
        split_list t fr ~factors:[ r0; r1 ]
    in
    let tail = Option.to_list co @ Option.to_list cv in
    (match rs with
    | [ ra; rb ] -> S.reorder t ([ par; sc; ra; rb; sv ] @ tail)
    | _ -> S.reorder t ([ par; sc; sv ] @ tail));
    S.parallel t par;
    (match cv with
    | Some v -> S.vectorize t v
    | None -> if pick d "vec" [ 0; 1 ] = 1 && s2 > 1 && s2 <= 16 then S.vectorize t sv);
    (* Register accumulator per cache tile. *)
    let out_buf =
      match (S.get_block t out_block).Stmt.writes with
      | [ wr ] -> wr.Stmt.buffer
      | _ -> Tir_sched.State.err "expected one write"
    in
    (if rs <> [] then begin
       let cwb = S.cache_write t out_block out_buf "local" in
       S.reverse_compute_at t cwb sc;
       autocopy_cpu t cwb ~vec:8;
       ignore (S.decompose_reduction t out_block (List.nth rs 0))
     end);
    record_decisions t knobs d;
    t
  in
  {
    name = "scalar-cpu";
    space_id = make_space_id "scalar-cpu" w;
    base = "";
    knobs;
    rejects;
    apply;
  }

(** Sketches for a workload on a target, given available intrinsics. *)
let generate (target : Tir_sim.Target.t) (w : W.t) (intrins : TI.t list) : t list =
  let cands = Candidate.candidates w intrins in
  match target.Tir_sim.Target.kind with
  | Tir_sim.Target.Gpu ->
      List.map (fun c -> tensorized_gpu c) cands @ [ scalar_gpu w ]
  | Tir_sim.Target.Cpu -> List.map tensorized_cpu cands @ [ scalar_cpu w ]
