(** Steppable evolutionary-search engine (paper §4.4).

    The search loop as an explicit state machine: {!create} builds the
    search state, {!step} advances it by exactly one generation (proposal
    fan-out, evaluation, ranked measurement, cost-model retrain,
    metrics/journal/checkpoint flush). One [step] is the atomic unit of
    work — everything a generation writes is committed before [step]
    returns, so drivers that interleave many engines on one pool
    ([Tir_service.Scheduler]) get preemption at generation boundaries for
    free, with per-tenant kill/resume bit-identity preserved.

    [Evolutionary.search] is the single-engine driver; it re-exports all
    the types below, so existing code keeps referring to
    [Evolutionary.stats] etc. *)

open Tir_ir

type measured = {
  sketch_name : string;
  base : string;  (** [Sketch.base] — start-function recipe for replay *)
  decisions : Space.decisions;
      (** extracted from [trace] ([Trace.decisions]) — kept as a field for
          cache keys and reporting *)
  trace : Tir_sched.Trace.t;
      (** full instruction trace of the winning schedule; serialized into
          database records so they replay without sketch regeneration *)
  func : Primfunc.t;
  latency_us : float;
}

type stats = {
  mutable trials : int;  (** programs measured *)
  mutable proposed : int;  (** programs proposed *)
  mutable invalid : int;  (** rejected by validation *)
  mutable unsound : int;  (** rejected by the semantic analyzer *)
  mutable inapplicable : int;  (** rejected by the sketch *)
  mutable unmeasurable : int;
      (** dropped after measurement faults exhausted their retries or the
          per-candidate budget expired *)
  mutable best_curve : (int * float) list;  (** (trial, best latency) *)
  mutable profiling_us : float;  (** simulated measurement time *)
  mutable cache_hits : int;  (** evaluation/measurement memo hits *)
  mutable cache_lookups : int;  (** evaluation/measurement memo probes *)
}

val new_stats : unit -> stats

(** [cache_hits / cache_lookups] (0 when nothing was probed). *)
val cache_hit_rate : stats -> float

type result = { best : measured option; stats : stats }

(** Write-ahead checkpoint hooks, called synchronously from the engine's
    sequential reduces (never from pool domains): [on_seen] receives the
    fresh dedup keys of each generation in slot order, [on_measured] each
    measured candidate in measurement order, and [on_generation] — the
    commit marker — the cumulative stats once a generation completes. *)
type checkpoint = {
  on_seen : gen:int -> string list -> unit;
  on_measured : gen:int -> measured -> unit;
  on_generation : gen:int -> stats -> best_us:float -> unit;
}

(** State rebuilt from a checkpoint log: re-enters the search at
    generation [r_gen] with the dedup set, the measured history (original
    order) and the committed counter snapshot ([r_stats.best_curve] is
    ignored — the curve is rebuilt from [r_measured]). *)
type resume = {
  r_gen : int;
  r_seen : string list;
  r_measured : measured list;
  r_stats : stats;
}

(** Fixed per-measurement overhead (compilation, transfer). *)
val measurement_overhead_us : float

(** Measurement repeats per candidate, capped at [measurement_cap_us]. *)
val measurement_runs : float

val measurement_cap_us : float

type t

type event =
  | Stepped of {
      gen : int;
      trials_done : int;
      best_us : float;
      rank_corr : float;
          (** cumulative {!rank_corr} after this generation *)
    }
      (** generation [gen] committed; [best_us] is NaN until something
          measured *)
  | Exhausted of { gen : int }
      (** generation [gen] proposed zero fresh candidates — the space is
          exhausted; the (empty) generation was still committed *)
  | Done  (** trial budget already reached; no work was performed *)

(** Build an engine. Same contract as [Evolutionary.search]:
    [use_cost_model:false] ranks randomly, [evolve:false] disables
    mutation/crossover, [model] is the learned cost model ranking each
    generation (default: a fresh [Model.gbdt ()]; pass a warm-started
    model to transfer from earlier runs) and [group] the label
    normalization group its samples are recorded under (default: the
    target name; [Tune] passes ["target|workload"]), [pool] is the domain
    pool the per-generation pipeline fans out across (default: the
    process-wide [TIR_JOBS]-sized pool) and may be shared with other
    engines, [retry] governs measurement fault retries,
    [checkpoint]/[resume] are the WAL hooks and the rebuilt re-entry
    state. Generation randomness derives from [(seed, gen)] only, so
    results are bit-identical at any job count and under any interleaving
    of engines. *)
val create :
  ?population:int ->
  ?measure_batch:int ->
  ?use_cost_model:bool ->
  ?evolve:bool ->
  ?model:Model.t ->
  ?group:string ->
  ?pool:Tir_parallel.Pool.t ->
  ?journal:Tir_obs.Journal.sink ->
  ?retry:Tir_parallel.Retry.policy ->
  ?checkpoint:checkpoint ->
  ?resume:resume ->
  seed:int ->
  target:Tir_sim.Target.t ->
  trials:int ->
  Sketch.t list ->
  t

(** Run exactly one generation (or report [Done] if the engine is already
    finished — [step] is idempotent past the end). The returned [t] is the
    same engine (state is mutated in place); the pair shape makes the
    state-machine contract explicit. *)
val step : t -> t * event

(** Trial budget reached or search space exhausted. *)
val finished : t -> bool

(** Next generation to run (= number of committed generations when the
    engine started fresh). *)
val gen : t -> int

(** Programs measured so far (monotone across [step]s). *)
val trials_done : t -> int

(** Best-so-far latency in µs; NaN until something measured. *)
val best_us : t -> float

(** Cumulative Spearman rank correlation between the model's predicted
    scores and measured speed over every pair this engine measured (0.0
    until two pairs exist). Not checkpointed: a resumed engine's
    correlation restarts over post-resume generations. *)
val rank_corr : t -> float

(** The engine's cost model — live, shared with the search. Read it after
    the run to persist ([Model.save], [Model.Store.absorb]). *)
val model : t -> Model.t

(** Snapshot of the search outcome; valid at any point, shares the live
    mutable [stats] record. *)
val result : t -> result
