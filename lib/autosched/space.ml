(** Search-space plumbing: knobs, decisions and tile-size enumeration.

    A sketch (paper §4.3) fixes the program structure and leaves named
    knobs; a decision vector assigns each knob one of its choices. The
    evolutionary search mutates decision vectors. *)

type knob = { name : string; count : int }
(** [count] alternatives, addressed by index. *)

type decisions = (string * int) list

let decide (d : decisions) name = Option.value ~default:0 (List.assoc_opt name d)

exception Unknown_knob of string

(** Strict [decide]: raises {!Unknown_knob} instead of silently defaulting
    to choice 0 when the vector has no entry for [name]. Sketch application
    uses this so a typo between a sketch's knob list and its apply function
    — or a stale decision vector from an old search-space version — is loud
    rather than a quietly wrong schedule. *)
let decide_exn (d : decisions) name =
  match List.assoc_opt name d with
  | Some v -> v
  | None -> raise (Unknown_knob name)

(** All ordered factorizations of [extent] into [parts] factors (product
    exactly [extent]). Factors beyond [max_factor] are only allowed in the
    first (outermost) position. *)
let factor_splits ?(max_factor = 64) extent parts =
  let divisors n = List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1)) in
  (* Choose the inner [parts-1] factors (each capped); the outermost factor
     absorbs the rest and may exceed the cap. *)
  let rec inner extent parts =
    if parts = 0 then [ [] ]
    else
      List.concat_map
        (fun d -> List.map (fun rest -> d :: rest) (inner (extent / d) (parts - 1)))
        (List.filter (fun d -> d <= max_factor) (divisors extent))
  in
  let all =
    List.map
      (fun rest ->
        let p = List.fold_left ( * ) 1 rest in
        (extent / p) :: rest)
      (inner extent (parts - 1))
  in
  match all with
  | [] -> [ List.init parts (fun i -> if i = 0 then extent else 1) ]
  | xs -> xs

(** Random decision vector for a knob list. *)
let random_decisions rng knobs =
  List.map (fun k -> (k.name, if k.count = 0 then 0 else Rng.int rng k.count)) knobs

(** Mutate one knob of [d] at random: half the time a uniform resample,
    half the time a step to a neighbouring choice (the factorization
    enumeration orders related tilings adjacently). *)
let mutate rng knobs (d : decisions) =
  match List.filter (fun k -> k.count > 1) knobs with
  | [] -> d
  | mutable_knobs ->
      let k = Rng.choose rng mutable_knobs in
      let nv =
        if Rng.bool rng then Rng.int rng k.count
        else
          let cur = decide d k.name in
          let step = if Rng.bool rng then 1 else -1 in
          max 0 (min (k.count - 1) (cur + step))
      in
      (k.name, nv) :: List.remove_assoc k.name d

(** One-point crossover: take each knob from either parent. *)
let crossover rng knobs (a : decisions) (b : decisions) =
  List.map
    (fun k ->
      let src = if Rng.bool rng then a else b in
      (k.name, decide src k.name))
    knobs

let key_of (d : decisions) =
  String.concat ";"
    (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (List.sort compare d))

(* Canonical key relative to a knob list: project onto [knobs] in knob
   order. [key_of] keys the raw assoc list, so a vector carrying a stale
   entry for a knob the space no longer reads gets a different key from
   the behaviourally identical projected vector — splitting memo entries.
   Projection makes the key a pure function of what [apply] can observe. *)
let canonical_key (knobs : knob list) (d : decisions) =
  (* Built with [Buffer] and [string_of_int]: this runs once per proposal
     on the search hot path, where a [Printf.sprintf] per knob is
     measurable. *)
  let b = Buffer.create 64 in
  List.iter
    (fun k ->
      if Buffer.length b > 0 then Buffer.add_char b ';';
      Buffer.add_string b k.name;
      Buffer.add_char b '=';
      Buffer.add_string b (string_of_int (decide_exn d k.name)))
    knobs;
  Buffer.contents b
