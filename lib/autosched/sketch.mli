(** Tensorized program sketch generation (paper §4.3, Figure 8): a sketch
    fixes program structure (tiling scheme, tensorized inner block, AutoCopy
    data-movement blocks) and exposes knobs for the evolutionary search. *)

module W = Tir_workloads.Workloads
module TI = Tir_intrin.Tensor_intrin

type t = {
  name : string;
  space_id : string;
      (** cache identity: [name] qualified by the workload's display name,
          a digest of its printed lowered func (covering shapes, dtypes and
          stride/pad index arithmetic) and sketch-variant flags.
          Measurement memo keys are [space_id | decisions], so this is
          injective over (workload, sketch variant) where [name] is not. *)
  base : string;
      (** how to rebuild the function the sketch schedules from the bare
          workload: the tensorization candidate's intrinsic name, or [""]
          when the sketch starts from [w.func] directly. Stored in database
          records so a trace can be replayed without regenerating the
          sketch. *)
  knobs : Space.knob list;
  rejects : Space.decisions -> bool;
      (** cheap pre-filter: [true] when the vector is provably inapplicable
          from the knob values alone. Mirrors exactly the explicit early
          guard checks in [apply] (warp count, thread range, degenerate
          parallelism), so a rejected vector is precisely one [apply] would
          have raised [Schedule_error] on — the evaluator short-circuits it
          to [Inapplicable] without materializing a program. *)
  apply : Space.decisions -> Tir_sched.Schedule.t;
      (** returns the schedule; its trace is the replayable script of
          everything applied, [Decide] records included. Raises
          [Tir_sched.State.Schedule_error] on an inapplicable decision
          vector (the search counts that as pruned) and
          [Space.Unknown_knob] on a vector missing one of [knobs]. *)
}

(** Workload identity independent of naming conventions: the hex structural
    fingerprint ({!Tir_ir.Fingerprint.func}) of the lowered func, covering
    every buffer shape, dtype and index expression (used in [space_id] and
    by database trace replay to check the stored base function still
    matches). Fingerprints hash names, never per-process ids, so the digest
    is stable across processes and [TIR_JOBS]. *)
val workload_digest : Tir_ir.Primfunc.t -> string

(** Tensor-Core style sketch over a candidate: block/warp tiling, shared
    staging with cooperative fetch, wmma fragment movement, tensorized
    compute.
    - [use_wmma_scopes:false] keeps operands in plain [local] scope (for
      intrinsics without scope requirements);
    - [stage_shared:false] skips the shared-memory staging (an ablation);
    - [pipeline] adds the software-pipelining annotation (vendor kernels);
    - [simple_copy] disables cooperative-fetch vectorization (AMOS-class
      fixed data movement). *)
val tensorized_gpu :
  ?use_wmma_scopes:bool ->
  ?stage_shared:bool ->
  ?pipeline:bool ->
  ?simple_copy:bool ->
  Candidate.t ->
  t

(** Ansor-style multi-level tiling without tensorization (non-tensorizable
    workloads; the TVM baseline). *)
val scalar_gpu : ?allow_shared:bool -> W.t -> t

(** ARM micro-kernel sketch: parallel tiling, BLIS-style panel packing into
    registers, tensorized inner block. *)
val tensorized_cpu : Candidate.t -> t

(** Multi-level CPU tiling without the tensor intrinsic. *)
val scalar_cpu : W.t -> t

(** Default sketch set for a workload on a target given its intrinsics. *)
val generate : Tir_sim.Target.t -> W.t -> TI.t list -> t list
