(** Learned cost models (paper §4.4): a first-class model interface with
    two implementations — the rank-trained GBDT and the analytic prior —
    plus a versioned on-disk store for cross-workload warm starts.

    The search only consumes the {e order} a model induces over a
    population, never its absolute outputs, so the reference
    implementation trains on a pairwise rank loss with labels normalized
    {e per group} (one group per tuning task): a sample's label is
    [best_group_latency / latency] — relative throughput against the best
    program of its own task — which makes samples from workloads with
    incomparable latency scales (c1d at 80µs next to gmm at 8000µs)
    coexist in one dataset without the cross-task pairs that made the old
    latency-regression model rank worse than random.

    Models serialize to a versioned percent-escaped text format (like the
    session WAL): the full sample set plus the fitted ensemble, [%h]
    floats throughout, so [save -> load -> save] is bit-identical and a
    loaded model can keep training. [Store] maintains one such file
    alongside a trace database and merges finished runs into it. *)

type stats = {
  samples : int;  (** measurement samples accumulated *)
  groups : int;  (** distinct tuning tasks contributing samples *)
  trained : bool;  (** an ensemble has been fitted *)
}

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(** The model interface: a learner accumulates [(group, features,
    latency)] samples, refits on demand, and scores feature vectors
    (higher = predicted faster). [save]/[load] round-trip the full
    training state, bit-identically. *)
module type S = sig
  type t

  val kind : string
  (** serialization tag, e.g. ["gbdt-rank"] *)

  val create : unit -> t

  val add : t -> group:string -> features:float array -> latency_us:float -> unit
  (** Record one measurement. [group] names the tuning task the sample
      came from (labels are only ever compared within a group). *)

  val retrain : t -> unit

  val score : t -> float array -> float

  val score_batch : t -> float array array -> float array
  (** Same values as mapping [score]; one ensemble pass. *)

  val iter_samples :
    t -> (group:string -> features:float array -> latency_us:float -> unit) -> unit
  (** Visit every sample in insertion order (the store's merge path). *)

  val save : t -> string

  val load : string -> t
  (** Inverse of [save]; raises {!Parse_error} on malformed input. *)

  val stats : t -> stats
end

(* Analytic prior shared by both implementations: prefer tensorized,
   high-occupancy programs. Operates on raw (untransformed) features. *)
let prior (features : float array) =
  (0.5 *. features.(11)) +. (0.2 *. features.(17)) -. (0.05 *. features.(4))

(* --- percent escaping (same alphabet as the WAL / database) ------------- *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' | '|' | '\n' | '\r' -> Printf.bprintf b "%%%02X" (Char.code c)
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '%' then begin
       if !i + 2 >= n then parse_fail "model: truncated escape in %S" s;
       let hex = String.sub s (!i + 1) 2 in
       match int_of_string_opt ("0x" ^ hex) with
       | Some code ->
           Buffer.add_char b (Char.chr code);
           i := !i + 2
       | None -> parse_fail "model: bad escape %%%s in %S" hex s
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let header_prefix = "# tensorir model v1 "

(* --- the rank-trained GBDT ---------------------------------------------- *)

module Gbdt_rank = struct
  let kind = "gbdt-rank"

  (* A group whose sample count hits the cap stops accepting — keeps the
     persisted store bounded while staying deterministic (first-come
     wins, independent of job count: [add] only runs in sequential
     reduces). Far above any single run's trial budget. *)
  let group_cap = 512

  type t = {
    mutable feats : float array array;  (** raw rows, capacity >= [n] *)
    mutable lats : float array;
    mutable grps : int array;  (** group id per row *)
    mutable n : int;
    group_ids : (string, int) Hashtbl.t;
    mutable group_names : string array;  (** id -> name, capacity >= count *)
    mutable group_best : float array;  (** id -> best latency *)
    mutable group_count : int array;  (** id -> samples in the group *)
    mutable n_groups : int;
    mutable model : Gbdt.t option;
  }

  let initial_capacity = 64

  let create () =
    {
      feats = Array.make initial_capacity [||];
      lats = Array.make initial_capacity 0.0;
      grps = Array.make initial_capacity 0;
      n = 0;
      group_ids = Hashtbl.create 8;
      group_names = Array.make 8 "";
      group_best = Array.make 8 Float.infinity;
      group_count = Array.make 8 0;
      n_groups = 0;
      model = None;
    }

  let group_id t name =
    match Hashtbl.find_opt t.group_ids name with
    | Some id -> id
    | None ->
        let id = t.n_groups in
        if id = Array.length t.group_names then begin
          let grow a fill = Array.append a (Array.make (Array.length a) fill) in
          t.group_names <- grow t.group_names "";
          t.group_best <- grow t.group_best Float.infinity;
          t.group_count <- grow t.group_count 0
        end;
        t.group_names.(id) <- name;
        Hashtbl.add t.group_ids name id;
        t.n_groups <- id + 1;
        id

  let add t ~group ~features ~latency_us =
    let g = group_id t group in
    if t.group_count.(g) < group_cap then begin
      if t.n = Array.length t.lats then begin
        let grow a fill = Array.append a (Array.make (Array.length a) fill) in
        t.feats <- grow t.feats [||];
        t.lats <- grow t.lats 0.0;
        t.grps <- grow t.grps 0
      end;
      t.feats.(t.n) <- features;
      t.lats.(t.n) <- latency_us;
      t.grps.(t.n) <- g;
      t.n <- t.n + 1;
      t.group_count.(g) <- t.group_count.(g) + 1;
      if latency_us < t.group_best.(g) then t.group_best.(g) <- latency_us
    end

  (* Feature transform: NaN -> 0, clamp, then signed log1p. The raw rows
     mix O(1) ratios with O(1e9) byte/flop counts; squashing to log space
     keeps split midpoints numerically sane and puts every feature on a
     comparable scale. Applied at fit and score time (the stored rows
     stay raw, so merging models never double-transforms). *)
  let squash x =
    let x = if Float.is_nan x then 0.0 else Float.max (-1e12) (Float.min 1e12 x) in
    if x < 0.0 then -.Float.log1p (-.x) else Float.log1p x

  let transform row = Array.map squash row

  let retrain t =
    if t.n > 0 then begin
      let xs = Array.init t.n (fun i -> transform t.feats.(i)) in
      (* Per-group label: relative throughput against the group's own
         best — in (0, 1], scale-free across tasks. *)
      let ys = Array.init t.n (fun i -> t.group_best.(t.grps.(i)) /. t.lats.(i)) in
      let groups = Array.sub t.grps 0 t.n in
      t.model <- Some (Gbdt.fit_rank xs ys ~groups)
    end

  let score t features =
    match t.model with
    | Some m -> Gbdt.predict m (transform features)
    | None -> prior features

  let score_batch t (rows : float array array) =
    match t.model with
    | Some m -> Gbdt.predict_batch m (Array.map transform rows)
    | None -> Array.map prior rows

  let iter_samples t f =
    for i = 0 to t.n - 1 do
      f ~group:t.group_names.(t.grps.(i)) ~features:t.feats.(i)
        ~latency_us:t.lats.(i)
    done

  let save t =
    let b = Buffer.create 4096 in
    Buffer.add_string b (header_prefix ^ kind ^ "\n");
    for i = 0 to t.n - 1 do
      Printf.bprintf b "sample|%s|%h|" (escape t.group_names.(t.grps.(i))) t.lats.(i);
      Array.iteri
        (fun j x ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "%h" x)
        t.feats.(i);
      Buffer.add_char b '\n'
    done;
    (match t.model with
    | None -> ()
    | Some m -> Printf.bprintf b "gbdt|%s\n" (escape (Gbdt.to_string m)));
    Buffer.contents b

  let float_field what s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> parse_fail "model: bad %s %S" what s

  let load s =
    let t = create () in
    let lines = String.split_on_char '\n' s in
    (match lines with
    | header :: _ when String.equal header (header_prefix ^ kind) -> ()
    | header :: _ -> parse_fail "model: bad header %S" header
    | [] -> parse_fail "model: empty input");
    List.iteri
      (fun i line ->
        if i > 0 && line <> "" then
          match String.split_on_char '|' line with
          | [ "sample"; group; lat; feats ] ->
              let features =
                Array.of_list
                  (List.map (float_field "feature")
                     (String.split_on_char ',' feats))
              in
              add t ~group:(unescape group) ~features
                ~latency_us:(float_field "latency" lat)
          | [ "gbdt"; text ] -> (
              match Gbdt.of_string (unescape text) with
              | m -> t.model <- Some m
              | exception Gbdt.Parse_error e -> parse_fail "model: %s" e)
          | _ -> parse_fail "model: bad line %S" line)
      lines;
    t

  let stats t =
    { samples = t.n; groups = t.n_groups; trained = t.model <> None }
end

(* --- the analytic prior as a model -------------------------------------- *)

module Analytic = struct
  let kind = "analytic"

  type t = unit

  let create () = ()
  let add () ~group:_ ~features:_ ~latency_us:_ = ()
  let retrain () = ()
  let score () features = prior features
  let score_batch () rows = Array.map prior rows
  let iter_samples () _ = ()
  let save () = header_prefix ^ kind ^ "\n"

  let load s =
    match String.split_on_char '\n' s with
    | header :: rest when String.equal header (header_prefix ^ kind) ->
        List.iter
          (fun line ->
            if line <> "" then parse_fail "model: bad line %S" line)
          rest
    | header :: _ -> parse_fail "model: bad header %S" header
    | [] -> parse_fail "model: empty input"

  let stats () = { samples = 0; groups = 0; trained = false }
end

(* --- packed models ------------------------------------------------------ *)

type t = Packed : (module S with type t = 'a) * 'a -> t

let gbdt () = Packed ((module Gbdt_rank), Gbdt_rank.create ())
let analytic () = Packed ((module Analytic), Analytic.create ())

let kind (Packed ((module M), _)) = M.kind

let add (Packed ((module M), m)) ~group ~features ~latency_us =
  M.add m ~group ~features ~latency_us

let retrain (Packed ((module M), m)) = M.retrain m
let score (Packed ((module M), m)) features = M.score m features
let score_batch (Packed ((module M), m)) rows = M.score_batch m rows
let iter_samples (Packed ((module M), m)) f = M.iter_samples m f
let save (Packed ((module M), m)) = M.save m
let stats (Packed ((module M), m)) = M.stats m

let load s =
  match String.index_opt s '\n' with
  | None -> parse_fail "model: missing header"
  | Some i -> (
      let header = String.sub s 0 i in
      let plen = String.length header_prefix in
      if
        String.length header <= plen
        || not (String.equal (String.sub header 0 plen) header_prefix)
      then parse_fail "model: bad header %S" header;
      match String.sub header plen (String.length header - plen) with
      | "gbdt-rank" -> Packed ((module Gbdt_rank), Gbdt_rank.load s)
      | "analytic" -> Packed ((module Analytic), Analytic.load s)
      | k -> parse_fail "model: unknown kind %S" k)

(* --- specs: how a config names a model ---------------------------------- *)

(** How a tuning config (or a WAL meta record) names its model: a fresh
    instance of a known implementation, or a warm start from a serialized
    snapshot. [Warm] carries the full snapshot text — embedding it (rather
    than a file path) in the session WAL is what makes kill+resume
    bit-identical even while the live store file keeps absorbing other
    runs. *)
type spec = Gbdt | Analytic | Warm of string

let of_spec = function
  | Gbdt -> gbdt ()
  | Analytic -> analytic ()
  | Warm text -> load text

let spec_to_string = function
  | Gbdt -> "gbdt"
  | Analytic -> "analytic"
  | Warm text -> "warm:" ^ text

let spec_of_string s =
  if String.equal s "gbdt" then Gbdt
  else if String.equal s "analytic" then Analytic
  else if String.length s >= 5 && String.equal (String.sub s 0 5) "warm:" then
    Warm (String.sub s 5 (String.length s - 5))
  else parse_fail "model: unknown spec %S" s

(* --- the persisted store ------------------------------------------------ *)

module Store = struct
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  let load path =
    if Sys.file_exists path then
      match load (read_file path) with
      | m -> Some m
      | exception Parse_error _ -> None
    else None

  (* Atomic publish: a crashed writer never leaves a torn store. *)
  let save ~path model =
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (save model));
    Sys.rename tmp path

  let absorb ~path model =
    let base = match load path with Some m -> m | None -> gbdt () in
    (* A warm-started run's model carries the store's own samples; exact
       dedup keeps re-absorbing them from doubling the store. Identical
       programs measured in different runs produce bit-identical
       (group, features, latency) triples, so an exact key is enough. *)
    let seen = Hashtbl.create 256 in
    let key ~group ~features ~latency_us =
      let b = Buffer.create 128 in
      Buffer.add_string b group;
      Buffer.add_string b (Printf.sprintf "|%h" latency_us);
      Array.iter (fun f -> Buffer.add_string b (Printf.sprintf "|%h" f)) features;
      Buffer.contents b
    in
    iter_samples base (fun ~group ~features ~latency_us ->
        Hashtbl.replace seen (key ~group ~features ~latency_us) ());
    iter_samples model (fun ~group ~features ~latency_us ->
        let k = key ~group ~features ~latency_us in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.replace seen k ();
          add base ~group ~features ~latency_us
        end);
    retrain base;
    save ~path base;
    base
end
