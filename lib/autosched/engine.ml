(** Steppable evolutionary-search engine (paper §4.4).

    This is the search loop of [Evolutionary], refactored into an explicit
    state machine: an [Engine.t] holds the full search state (elite set,
    dedup table, cost model, cumulative stats, generation counter) and
    {!step} advances it by exactly one generation — proposal fan-out,
    evaluation, ranked measurement, cost-model retrain, and the
    per-generation metrics/journal/checkpoint flush. [Evolutionary.search],
    [Tune.run] and [Session.run] are thin drivers that loop [step];
    schedulers that interleave many searches ([Tir_service.Scheduler])
    call [step] directly and get preemption at generation boundaries for
    free — a generation is the atomic unit of work, and everything a
    generation writes (WAL records, metrics, journal events) is committed
    before [step] returns.

    Every determinism property of the monolithic loop is preserved:
    generation randomness derives from [(seed, gen)] alone
    ([Rng.for_generation]), pool fan-outs reduce in slot order, and the
    memoized evaluation/measurement pipeline is pure — so a fixed seed
    yields bit-identical results at any job count, regardless of how many
    engines interleave their steps on one shared pool. *)

open Tir_ir
module Pool = Tir_parallel.Pool
module Journal = Tir_obs.Journal
module Metrics = Tir_obs.Metrics

type measured = {
  sketch_name : string;
  base : string;  (** [Sketch.base] — start-function recipe for replay *)
  decisions : Space.decisions;
      (** extracted from [trace] ([Trace.decisions]) — kept as a field for
          cache keys and reporting *)
  trace : Tir_sched.Trace.t;
      (** full instruction trace of the winning schedule; serialized into
          database records so they replay without sketch regeneration *)
  func : Primfunc.t;
  latency_us : float;
}

type stats = {
  mutable trials : int;  (** programs measured on hardware *)
  mutable proposed : int;  (** programs proposed by the search *)
  mutable invalid : int;  (** rejected by the §3.3 validator *)
  mutable unsound : int;  (** rejected by the semantic analyzer *)
  mutable inapplicable : int;  (** decision vectors the sketch rejects *)
  mutable unmeasurable : int;
      (** candidates dropped after measurement faults exhausted their
          retries or the per-candidate budget expired *)
  mutable best_curve : (int * float) list;  (** (trial, best latency) *)
  mutable profiling_us : float;  (** simulated time spent measuring *)
  mutable cache_hits : int;  (** evaluation/measurement memo hits *)
  mutable cache_lookups : int;  (** evaluation/measurement memo probes *)
}

let new_stats () =
  {
    trials = 0;
    proposed = 0;
    invalid = 0;
    unsound = 0;
    inapplicable = 0;
    unmeasurable = 0;
    best_curve = [];
    profiling_us = 0.0;
    cache_hits = 0;
    cache_lookups = 0;
  }

(** Memo hit-rate over this search's probes (0 when nothing was probed). *)
let cache_hit_rate stats =
  if stats.cache_lookups = 0 then 0.0
  else float_of_int stats.cache_hits /. float_of_int stats.cache_lookups

type result = { best : measured option; stats : stats }

(** Write-ahead checkpoint hooks, called synchronously from the engine's
    sequential reduces (never from pool domains). The callee must consume
    its arguments before returning — [stats] is the search's live mutable
    record. A generation is only {e committed} by [on_generation]; a crash
    mid-generation loses nothing, because the generation re-runs
    bit-identically from its [(seed, gen)]-derived stream. *)
type checkpoint = {
  on_seen : gen:int -> string list -> unit;
      (** fresh candidate keys deduplicated into the seen-set this
          generation, in slot order *)
  on_measured : gen:int -> measured -> unit;
      (** one successfully measured candidate, in measurement order *)
  on_generation : gen:int -> stats -> best_us:float -> unit;
      (** generation completed; [stats] is the cumulative snapshot *)
}

(** State rebuilt from a checkpoint log, handed to [create ?resume] to
    re-enter at generation [r_gen] with bit-identical behaviour. *)
type resume = {
  r_gen : int;  (** next generation to run *)
  r_seen : string list;  (** every key deduplicated so far *)
  r_measured : measured list;  (** in original measurement order *)
  r_stats : stats;
      (** cumulative counters at the last committed generation
          ([best_curve] is ignored — it is rebuilt from [r_measured]) *)
}

(* Cost charged per hardware measurement: each candidate runs a few times
   plus compilation/transfer overhead. This drives the Table 1 comparison:
   searches that propose slower programs pay more profiling time. *)
let measurement_overhead_us = 60_000.0
let measurement_runs = 50.0

(* Real tuners cap the per-candidate measurement time (min-repeat logic). *)
let measurement_cap_us = 150_000.0

(* Where a proposal came from — drives the journal's mutation-acceptance
   accounting. *)
type origin = Seeded | Random | Mutation | Crossover

(* Registry counters; process-wide totals across every search. *)
let m_proposed = Metrics.counter "search.proposed"
let m_deduped = Metrics.counter "search.deduped"
let m_invalid = Metrics.counter "search.invalid"
let m_unsound = Metrics.counter "search.unsound"
let m_inapplicable = Metrics.counter "search.inapplicable"
let m_trials = Metrics.counter "search.trials"
let m_generations = Metrics.counter "search.generations"
let m_mutations = Metrics.counter "search.mutations"
let m_crossovers = Metrics.counter "search.crossovers"
let m_accepted = Metrics.counter "search.accepted"
let m_unmeasurable = Metrics.counter "search.unmeasurable"
let m_rank_corr = Metrics.gauge "costmodel.rank_corr"
let m_memo_rate = Metrics.gauge "search.memo_hit_rate"

(* Per-generation journal tallies, reset each round. *)
type gen_tally = {
  mutable g_proposed : int;
  mutable g_deduped : int;
  mutable g_invalid : int;
  mutable g_unsound : int;
  mutable g_inapplicable : int;
  mutable g_memo_hits : int;
  mutable g_lookups : int;  (** memo probes this generation (hit-rate base) *)
  mutable g_measured : int;
  mutable g_unmeasurable : int;
  mutable g_mutations : int;
  mutable g_crossovers : int;
  mutable g_accepted : int;
  mutable g_pairs : (float * float) list;  (** (predicted score, latency) *)
}

let new_gen_tally () =
  {
    g_proposed = 0;
    g_deduped = 0;
    g_invalid = 0;
    g_unsound = 0;
    g_inapplicable = 0;
    g_memo_hits = 0;
    g_lookups = 0;
    g_measured = 0;
    g_unmeasurable = 0;
    g_mutations = 0;
    g_crossovers = 0;
    g_accepted = 0;
    g_pairs = [];
  }

type t = {
  population : int;
  measure_batch : int;
  use_cost_model : bool;
  evolve : bool;
  pool : Pool.t;
  journal : Journal.sink option;
  retry : Tir_parallel.Retry.policy option;
  checkpoint : checkpoint option;
  seed : int;
  target : Tir_sim.Target.t;
  trials : int;
  sketches : Sketch.t list;
  stats : stats;
  model : Model.t;
  group : string;  (** the model's label-normalization group for this task *)
  key_prefix : string;
  seen : (string, unit) Hashtbl.t;
  mutable elites : measured list;
  mutable best : measured option;
  mutable gen : int;  (** next generation to run *)
  mutable tally : gen_tally;
  mutable pairs : (float * float) list;
      (** cumulative (predicted score, latency) pairs across generations —
          the engine-level rank-correlation sample. Not checkpointed: a
          resumed engine's correlation restarts over post-resume
          generations (it never feeds the search itself). *)
  mutable exhausted : bool;  (** a generation produced zero fresh candidates *)
}

type event =
  | Stepped of {
      gen : int;
      trials_done : int;
      best_us : float;
      rank_corr : float;
    }
  | Exhausted of { gen : int }
  | Done

let gen t = t.gen
let trials_done t = t.stats.trials
let finished t = t.exhausted || t.stats.trials >= t.trials
let result t = { best = t.best; stats = t.stats }
let best_us t = match t.best with Some b -> b.latency_us | None -> Float.nan
let model t = t.model

(* Predicted score is "higher = faster"; correlate against -latency so a
   perfect model scores +1. *)
let spearman_of_pairs pairs =
  Tir_obs.Stat.spearman
    (Array.of_list (List.rev_map (fun (s, l) -> (s, -.l)) pairs))

(** Cumulative rank correlation over every (score, latency) pair this
    engine measured — NaN until two distinct pairs exist. *)
let rank_corr t = spearman_of_pairs t.pairs

let consider t (m : measured) =
  (match t.best with
  | Some b when b.latency_us <= m.latency_us -> ()
  | _ ->
      t.best <- Some m;
      t.stats.best_curve <- (t.stats.trials, m.latency_us) :: t.stats.best_curve);
  t.elites <-
    List.filteri
      (fun i _ -> i < t.population)
      (List.sort (fun a b -> Float.compare a.latency_us b.latency_us) (m :: t.elites))

(* --- proposal generation (slot-parallel, split RNG per slot) --- *)

let random_specs t rng n =
  let rngs = Rng.split_n rng n in
  Array.to_list
    (Pool.parallel_map t.pool
       (fun r ->
         let sk = Rng.choose r t.sketches in
         (sk, Space.random_decisions r sk.Sketch.knobs, Random))
       rngs)

let evolved_specs t rng n =
  match t.elites with
  | [] -> []
  | es ->
      let rngs = Rng.split_n rng n in
      Array.to_list
        (Pool.parallel_map t.pool
           (fun r ->
             let parent = Rng.choose r es in
             let sk =
               List.find
                 (fun s -> String.equal s.Sketch.name parent.sketch_name)
                 t.sketches
             in
             (* Decisions are mutated inside the parent's trace: the
                trace's [Decide] records are the authoritative knob
                assignment of the measured schedule. *)
             let pd = Tir_sched.Trace.decisions parent.trace in
             if Rng.bool r || List.length es < 2 then
               (sk, Space.mutate r sk.Sketch.knobs pd, Mutation)
             else
               let other = Rng.choose r es in
               if String.equal other.sketch_name parent.sketch_name then
                 ( sk,
                   Space.crossover r sk.Sketch.knobs pd
                     (Tir_sched.Trace.decisions other.trace),
                   Crossover )
               else (sk, Space.mutate r sk.Sketch.knobs pd, Mutation))
           rngs)

(* Heuristic initial samples (Ansor-style): a few structured decision
   vectors per sketch anchor the first generation so small trial budgets
   do not depend purely on random luck. *)
let seeded_specs t =
  List.concat_map
    (fun (sk : Sketch.t) ->
      List.map
        (fun pickf ->
          ( sk,
            List.map
              (fun (k : Space.knob) -> (k.Space.name, pickf k.Space.count))
              sk.Sketch.knobs,
            Seeded ))
        [
          (fun _ -> 0);
          (fun c -> c / 2);
          (fun c -> max 0 (c - 1));
          (fun c -> c / 3);
          (fun c -> 2 * c / 3);
        ])
    t.sketches

(* Dedup in slot order, evaluate the fresh candidates across the pool
   (memoized apply/validate/extract), account in slot order. *)
let propose_all t specs =
  let g = t.tally in
  let fresh =
    List.filter_map
      (fun ((sk : Sketch.t), d, origin) ->
        (* Canonical key: the vector projected onto the sketch's knob
           list. Raw [Space.key_of] would let a stale entry (a knob this
           sketch does not read) split the memo entry for a behaviourally
           identical candidate. *)
        let key =
          sk.Sketch.space_id ^ "|" ^ Space.canonical_key sk.Sketch.knobs d
        in
        if Hashtbl.mem t.seen key then begin
          g.g_deduped <- g.g_deduped + 1;
          None
        end
        else begin
          Hashtbl.add t.seen key ();
          t.stats.proposed <- t.stats.proposed + 1;
          g.g_proposed <- g.g_proposed + 1;
          (match origin with
          | Mutation -> g.g_mutations <- g.g_mutations + 1
          | Crossover -> g.g_crossovers <- g.g_crossovers + 1
          | Seeded | Random -> ());
          Some (sk, d, key, origin)
        end)
      specs
  in
  (* WAL the fresh keys before any evaluation: resuming a later
     generation must re-seed the dedup set exactly. *)
  (match t.checkpoint with
  | Some c when fresh <> [] ->
      c.on_seen ~gen:t.gen (List.map (fun (_, _, key, _) -> key) fresh)
  | _ -> ());
  let evals =
    Pool.parallel_map_list t.pool
      (fun ((sk : Sketch.t), d, key, _) ->
        Tir_obs.Trace.with_ctx ~candidate:key (fun () ->
            Tir_obs.Trace.with_span "evaluate" (fun () ->
                Eval.evaluate_cached ~key:(t.key_prefix ^ key)
                  ~target:t.target sk d)))
      fresh
  in
  List.concat
    (List.map2
       (fun (sk, d, key, origin) (hit, ev) ->
         t.stats.cache_lookups <- t.stats.cache_lookups + 1;
         g.g_lookups <- g.g_lookups + 1;
         if hit then begin
           t.stats.cache_hits <- t.stats.cache_hits + 1;
           g.g_memo_hits <- g.g_memo_hits + 1
         end;
         match ev with
         | Eval.Inapplicable ->
             t.stats.inapplicable <- t.stats.inapplicable + 1;
             g.g_inapplicable <- g.g_inapplicable + 1;
             []
         | Eval.Invalid ->
             t.stats.invalid <- t.stats.invalid + 1;
             g.g_invalid <- g.g_invalid + 1;
             []
         | Eval.Unsound ->
             t.stats.unsound <- t.stats.unsound + 1;
             g.g_unsound <- g.g_unsound + 1;
             []
         | Eval.Unsupported -> []
         | Eval.Evaluated { func; fp; features; trace } ->
             [ (sk, d, key, origin, func, fp, features, trace) ])
       fresh evals)

(* Measure a ranked batch across the pool (memoized), then feed the cost
   model, the elite set, and the journal tallies in rank order.

   Measurement memo keys are program fingerprints (the simulator is a
   pure function of (target, program)), so one batch can contain the
   same key twice — distinct decision vectors that materialize
   structurally identical programs. Each distinct key is probed exactly
   once across the pool; a duplicate slot then reads the first slot's
   outcome as a hit. That is what sequential probing would produce, and
   it avoids same-key pending-wait races inside one region, which would
   make the memo counters depend on the job count. *)
let measure_top t scored =
  let g = t.tally in
  let keyed =
    List.map
      (fun ((_, (_, _, _, _, _, fp, _, _)) as sc) ->
        (t.key_prefix ^ "prog#" ^ Tir_ir.Fingerprint.to_hex fp, sc))
      scored
  in
  let distinct_tbl = Hashtbl.create 16 in
  let distinct =
    List.filter_map
      (fun (key, (_, (_, _, _, _, func, _, _, _))) ->
        if Hashtbl.mem distinct_tbl key then None
        else begin
          Hashtbl.add distinct_tbl key ();
          Some (key, func)
        end)
      keyed
  in
  let probes =
    Pool.parallel_map_list t.pool
      (fun (key, func) ->
        (* the program fingerprint is the candidate identity on the trace *)
        Tir_obs.Trace.with_ctx ~candidate:key (fun () ->
            Tir_obs.Trace.with_span "measure" (fun () ->
                Eval.measure_cached ?retry:t.retry ~key ~target:t.target
                  func)))
      distinct
  in
  let by_key = Hashtbl.create 16 in
  List.iter2 (fun (key, _) r -> Hashtbl.replace by_key key r) distinct probes;
  let seen_in_batch = Hashtbl.create 16 in
  List.iter
    (fun (key, (score, ((sk : Sketch.t), _, _, origin, func, _, features, trace)))
         ->
      let hit, outcome =
        if Hashtbl.mem seen_in_batch key then
          (true, snd (Hashtbl.find by_key key))
        else begin
          Hashtbl.add seen_in_batch key ();
          Hashtbl.find by_key key
        end
      in
      t.stats.cache_lookups <- t.stats.cache_lookups + 1;
      g.g_lookups <- g.g_lookups + 1;
      if hit then begin
        t.stats.cache_hits <- t.stats.cache_hits + 1;
        g.g_memo_hits <- g.g_memo_hits + 1
      end;
      match outcome with
      | Eval.Unsupported_target -> ()
      | Eval.Unmeasurable ->
          (* Graceful degradation: scored but never measured — the
             candidate is skipped without feeding the cost model, the
             elite set, or (via the checkpoint) the database. *)
          t.stats.unmeasurable <- t.stats.unmeasurable + 1;
          g.g_unmeasurable <- g.g_unmeasurable + 1
      | Eval.Measured latency_us ->
          t.stats.trials <- t.stats.trials + 1;
          t.stats.profiling_us <-
            t.stats.profiling_us
            +. Float.min measurement_cap_us (latency_us *. measurement_runs)
            +. measurement_overhead_us;
          g.g_measured <- g.g_measured + 1;
          g.g_pairs <- (score, latency_us) :: g.g_pairs;
          Model.add t.model ~group:t.group ~features ~latency_us;
          let m =
            {
              sketch_name = sk.Sketch.name;
              base = sk.Sketch.base;
              decisions = Tir_sched.Trace.decisions trace;
              trace;
              func;
              latency_us;
            }
          in
          consider t m;
          (match t.checkpoint with
          | Some c -> c.on_measured ~gen:t.gen m
          | None -> ());
          (* A mutant/crossover is "accepted" when it survives into the
             elite set — the population actually evolved. *)
          (match origin with
          | Mutation | Crossover ->
              if List.memq m t.elites then g.g_accepted <- g.g_accepted + 1
          | Seeded | Random -> ()))
    keyed

(* Flush the per-generation tallies: registry counters, rank-correlation
   gauge, journal events. Runs in the sequential reduce, so everything
   here is deterministic at any job count. *)
let finish_generation t =
  let tl = t.tally in
  let best_us = best_us t in
  (* Per-generation correlation feeds the journal (the historical
     schema); the registry gauge carries the cumulative figure over the
     whole search, which is what actually says whether the model ranks
     this task well — one measurement batch is too small a sample. *)
  let gen_rank_corr = spearman_of_pairs tl.g_pairs in
  t.pairs <- tl.g_pairs @ t.pairs;
  let cum_rank_corr = spearman_of_pairs t.pairs in
  Metrics.add m_proposed tl.g_proposed;
  Metrics.add m_deduped tl.g_deduped;
  Metrics.add m_invalid tl.g_invalid;
  Metrics.add m_unsound tl.g_unsound;
  Metrics.add m_inapplicable tl.g_inapplicable;
  Metrics.add m_trials tl.g_measured;
  Metrics.add m_mutations tl.g_mutations;
  Metrics.add m_crossovers tl.g_crossovers;
  Metrics.add m_accepted tl.g_accepted;
  Metrics.add m_unmeasurable tl.g_unmeasurable;
  Metrics.incr m_generations;
  Metrics.set m_rank_corr cum_rank_corr;
  let gen_hit_rate =
    if tl.g_lookups = 0 then 0.0
    else float_of_int tl.g_memo_hits /. float_of_int tl.g_lookups
  in
  (* The gauge carries the cumulative process-wide memo hit rate (from
     the memo atomics — deterministic at any job count). It used to be
     set to the per-generation rate, whose final write — the empty
     exhausted/committing generation, zero probes — pinned the reported
     value at 0.0 (the ROADMAP's "memo_hit_rate gauge reads 0" bug). The
     per-generation rate still reaches the journal below. *)
  (let s = Eval.cache_stats () in
   let probes = s.Eval.hits + s.Eval.misses in
   if probes > 0 then
     Metrics.set m_memo_rate (float_of_int s.Eval.hits /. float_of_int probes));
  (match t.journal with
  | None -> ()
  | Some sink ->
      List.iter
        (fun (predicted, measured_us) ->
          Journal.emit sink (Journal.Pair { gen = t.gen; predicted; measured_us }))
        (List.rev tl.g_pairs);
      Journal.emit sink
        (Journal.Generation
           {
             gen = t.gen;
             proposed = tl.g_proposed;
             deduped = tl.g_deduped;
             (* analyzer rejections fold into the journal's invalid
                count: the schema predates the semantic analyzer *)
             invalid = tl.g_invalid + tl.g_unsound;
             inapplicable = tl.g_inapplicable;
             memo_hits = tl.g_memo_hits;
             measured = tl.g_measured;
             mutations = tl.g_mutations;
             crossovers = tl.g_crossovers;
             accepted = tl.g_accepted;
             best_us;
             rank_corr = gen_rank_corr;
           });
      (* Per-generation memo hit rates: this generation's probes, then
         each table's cumulative rate. Computed from the memo's atomic
         hit/miss counters — deterministic at any job count (exactly one
         miss per key), unlike the registry's pending-wait meters. *)
      Journal.emit sink
        (Journal.Gauge { name = "memo.gen.hit_rate"; value = gen_hit_rate });
      List.iter
        (fun (name, (s : Eval.cache_stats)) ->
          let probes = s.Eval.hits + s.Eval.misses in
          let rate =
            if probes = 0 then 0.0
            else float_of_int s.Eval.hits /. float_of_int probes
          in
          Journal.emit sink
            (Journal.Gauge { name = "memo." ^ name ^ ".hit_rate"; value = rate }))
        (Eval.cache_breakdown ()));
  (* Trace the generation boundary: a deterministic instant (identity
     carries the tallies) plus counter tracks for the Perfetto view.
     Runs in the sequential reduce, like everything above. *)
  Tir_obs.Trace.instant "gen.commit"
    ~args:
      [
        ("gen", string_of_int t.gen);
        ("proposed", string_of_int tl.g_proposed);
        ("deduped", string_of_int tl.g_deduped);
        ("measured", string_of_int tl.g_measured);
        ("trials", string_of_int t.stats.trials);
        ("best_us", Printf.sprintf "%h" best_us);
      ];
  Tir_obs.Trace.counter "search.trials" (float_of_int t.stats.trials);
  if Float.is_finite best_us then Tir_obs.Trace.counter "search.best_us" best_us;
  (* Commit marker: everything this generation wrote becomes durable
     only here. Emitted after the metrics/journal flush, before the
     counter advances. *)
  (match t.checkpoint with
  | Some c -> c.on_generation ~gen:t.gen t.stats ~best_us
  | None -> ());
  t.gen <- t.gen + 1;
  t.tally <- new_gen_tally ()

let create ?(population = 32) ?(measure_batch = 16) ?(use_cost_model = true)
    ?(evolve = true) ?model ?group ?pool ?journal ?retry ?checkpoint ?resume
    ~seed ~target ~trials (sketches : Sketch.t list) : t =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let model = match model with Some m -> m | None -> Model.gbdt () in
  let group =
    match group with Some g -> g | None -> target.Tir_sim.Target.name
  in
  let t =
    {
      population;
      measure_batch;
      use_cost_model;
      evolve;
      pool;
      journal;
      retry;
      checkpoint;
      seed;
      target;
      trials;
      sketches;
      stats = new_stats ();
      model;
      group;
      key_prefix = Eval.cache_prefix target;
      seen = Hashtbl.create 256;
      elites = [];
      best = None;
      gen = 0;
      tally = new_gen_tally ();
      pairs = [];
      exhausted = false;
    }
  in
  (* Resume: rebuild the in-memory search state from a checkpoint log.
     The dedup set and the measured list replay through the same
     sequential code paths a live run uses, so the elite set, the best
     curve, and the cost-model dataset come out bit-identical; the
     aggregate counters are then restored from the committed snapshot. *)
  (match resume with
  | None -> ()
  | Some r ->
      t.gen <- max 0 r.r_gen;
      List.iter (fun k -> Hashtbl.replace t.seen k ()) r.r_seen;
      List.iter
        (fun (m : measured) ->
          let features = Features.extract target m.func in
          Model.add t.model ~group:t.group ~features ~latency_us:m.latency_us;
          t.stats.trials <- t.stats.trials + 1;
          consider t m)
        r.r_measured;
      (* The model refits on the full dataset every round, so one retrain
         after the replayed adds reproduces the live run's model state at
         this generation boundary exactly. *)
      if r.r_measured <> [] then Model.retrain t.model;
      t.stats.trials <- r.r_stats.trials;
      t.stats.proposed <- r.r_stats.proposed;
      t.stats.invalid <- r.r_stats.invalid;
      t.stats.unsound <- r.r_stats.unsound;
      t.stats.inapplicable <- r.r_stats.inapplicable;
      t.stats.unmeasurable <- r.r_stats.unmeasurable;
      t.stats.profiling_us <- r.r_stats.profiling_us;
      t.stats.cache_hits <- r.r_stats.cache_hits;
      t.stats.cache_lookups <- r.r_stats.cache_lookups);
  t

let step t =
  if finished t then (t, Done)
  else
    Tir_obs.Trace.with_ctx ~generation:t.gen @@ fun () ->
    Tir_obs.Trace.with_span "engine.step" @@ fun () ->
    begin
    (* Each generation draws from its own (seed, gen)-derived stream:
       generation [g]'s randomness depends only on the seed and [g],
       never on how many draws earlier generations made — the property
       that lets a resumed process (or a preempted engine) re-enter
       mid-search. *)
    let rng = Rng.for_generation ~seed:t.seed ~gen:t.gen in
    let fresh = if t.elites = [] then t.population * 4 else t.population in
    let seeds = if t.elites = [] then seeded_specs t else [] in
    let specs =
      if t.evolve then
        seeds @ random_specs t rng fresh @ evolved_specs t rng (t.population * 2)
      else seeds @ random_specs t rng (t.population * 3)
    in
    match propose_all t specs with
    | [] ->
        (* Space exhausted: commit the empty generation and stop. *)
        let g = t.gen in
        t.exhausted <- true;
        finish_generation t;
        (t, Exhausted { gen = g })
    | cands ->
        let scores =
          if t.use_cost_model then
            Array.to_list
              (Model.score_batch t.model
                 (Array.of_list
                    (List.map (fun (_, _, _, _, _, _, f, _) -> f) cands)))
          else List.map (fun _ -> Rng.float rng 1.0) cands
        in
        let ranked =
          (* stable sort: ties keep generation order *)
          List.sort
            (fun ((a : float), _) (b, _) -> Float.compare b a)
            (List.combine scores cands)
        in
        let batch = min t.measure_batch (t.trials - t.stats.trials) in
        measure_top t (List.filteri (fun i _ -> i < batch) ranked);
        Model.retrain t.model;
        let g = t.gen in
        finish_generation t;
        ( t,
          Stepped
            {
              gen = g;
              trials_done = t.stats.trials;
              best_us = best_us t;
              rank_corr = rank_corr t;
            } )
  end
