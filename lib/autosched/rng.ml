(** Deterministic PRNG for the search: every random decision flows through a
    seeded state so tuning runs are reproducible bit-for-bit. *)

type t = Random.State.t

let create seed = Random.State.make [| 0x7e50; seed |]

(** The search generation [gen]'s stream under [seed]. Deriving each
    generation's randomness from [(seed, gen)] alone — instead of
    threading one state across generations — is what lets a resumed
    search re-enter at generation [g] with bit-identical randomness
    without ever serializing PRNG state. *)
let for_generation ~seed ~gen = Random.State.make [| 0x7e50; seed; 0x517c; gen |]

let int = Random.State.int
let float = Random.State.float
let bool = Random.State.bool

(** Uniform choice from a non-empty list. *)
let choose t xs = List.nth xs (int t (List.length xs))

(** Split off an independent stream (for per-task determinism regardless of
    evaluation order). *)
let split t = Random.State.make [| int t 0x3fffffff |]

(** [split_n t n] splits [n] independent streams, drawing the seeds from
    [t] sequentially. Handing one stream to each parallel task makes the
    task's random decisions a function of its *slot*, not of the execution
    interleaving — the basis of the search's job-count invariance. *)
let split_n t n = Array.init n (fun _ -> split t)
