(** Learned cost models (paper §4.4): a first-class model interface with
    two implementations — the rank-trained GBDT and the analytic prior —
    plus a versioned on-disk store for cross-workload warm starts.

    The search only consumes the order a model induces over a population,
    so the GBDT trains on a pairwise rank loss with labels normalized per
    group (one group per tuning task): a sample's label is
    [best_group_latency / latency], relative throughput against the best
    program of its own task. Workloads with incomparable latency scales
    can therefore share one dataset — the transfer-learning foundation of
    the warm-start path. *)

type stats = {
  samples : int;  (** measurement samples accumulated *)
  groups : int;  (** distinct tuning tasks contributing samples *)
  trained : bool;  (** an ensemble has been fitted *)
}

exception Parse_error of string

(** The model interface. [add] records one measurement under a group
    (labels are only compared within a group); [retrain] refits;
    [score]/[score_batch] rank feature vectors (higher = predicted
    faster); [save]/[load] round-trip the full training state
    bit-identically, so a loaded model can keep training. *)
module type S = sig
  type t

  val kind : string
  val create : unit -> t
  val add : t -> group:string -> features:float array -> latency_us:float -> unit
  val retrain : t -> unit
  val score : t -> float array -> float
  val score_batch : t -> float array array -> float array

  val iter_samples :
    t -> (group:string -> features:float array -> latency_us:float -> unit) -> unit

  val save : t -> string
  val load : string -> t
  val stats : t -> stats
end

(** The rank-trained GBDT (default): per-group throughput labels, signed
    log1p feature squashing, [Gbdt.fit_rank] pairwise training. A group's
    sample count is capped (512); deterministic first-come retention. *)
module Gbdt_rank : S

(** The stateless analytic prior (prefer tensorized, high-occupancy
    programs) behind the same interface — [add]/[retrain] are no-ops. *)
module Analytic : S

(** The analytic scoring function itself, on raw feature vectors. *)
val prior : float array -> float

(** A model packed with its implementation. *)
type t

val gbdt : unit -> t
val analytic : unit -> t
val kind : t -> string
val add : t -> group:string -> features:float array -> latency_us:float -> unit
val retrain : t -> unit
val score : t -> float array -> float
val score_batch : t -> float array array -> float array

val iter_samples :
  t -> (group:string -> features:float array -> latency_us:float -> unit) -> unit

(** Serialized snapshot (versioned, percent-escaped text; [%h] floats).
    [save -> load -> save] is bit-identical. *)
val save : t -> string

(** Load any snapshot, dispatching on its header kind. Raises
    {!Parse_error} on malformed input. *)
val load : string -> t

val stats : t -> stats

(** How a tuning config (or a WAL meta record) names its model: a fresh
    instance, or a warm start from a serialized snapshot. [Warm] embeds
    the full snapshot text — the session WAL records it verbatim, which is
    what keeps kill+resume bit-identical while the live store file keeps
    absorbing other runs. *)
type spec = Gbdt | Analytic | Warm of string

val of_spec : spec -> t

(** One-line round-trip for WAL meta records ([Warm] embeds the snapshot;
    the WAL layer escapes it). [spec_of_string] raises {!Parse_error} on
    unknown input. *)
val spec_to_string : spec -> string

val spec_of_string : string -> spec

(** The persisted model store: one snapshot file maintained alongside a
    trace database. [absorb] merges a finished run's samples into the
    store, refits, and atomically republishes (tmp + rename) — the
    cross-workload transfer loop of [tensorir serve]. *)
module Store : sig
  (** [None] when the file does not exist or does not parse (a corrupt
      store degrades to a cold start, never a crash). *)
  val load : string -> t option

  val save : path:string -> t -> unit

  (** Merge [model]'s samples into the store at [path], retrain, save;
      returns the merged model. Exact-duplicate samples are dropped, so
      absorbing a model that was itself warm-started from this store
      never double-counts the store's own history. *)
  val absorb : path:string -> t -> t
end
