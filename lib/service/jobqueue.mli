(** Job-directory protocol behind [tensorir serve]/[submit]/[jobs].

    A queue directory holds four state subdirectories; a job is a single
    [<name>.job] file moved between them by same-filesystem renames, so
    observers always see a consistent state:

    {v
    queue/
      pending/NAME.job     submitted, not yet picked up
      running/NAME.job     adopted by the server (+ NAME.wal session log)
      done/NAME.job        completed (+ NAME.result, NAME.wal kept)
      failed/NAME.job      rejected or errored (+ NAME.error diagnostic)
      db.txt               shared trace database (cross-tenant replay)
      model.txt            shared cost-model store (cross-workload warm start)
    v}

    Job files are line-oriented [key=value] (values percent-escaped;
    plain alphanumerics pass through, so hand-written files work):
    [workload] (required tag), [target] (default [gpu]), [seed]
    (default 42), [trials] (default 64), [priority] (default 1, clamped
    to [>= 1]). Blank lines and [#] comments are skipped. A malformed
    job — unknown key, bad integer, unknown workload or target — moves
    to [failed/] with a [NAME.error] file carrying the shared
    {!Tir_core.Error.t} kind, exit code, and message; the server never
    wedges on bad input.

    The server can be killed at any generation boundary: WALs are
    committed, job files stay in [running/], and the next {!serve}
    adopts them via [Session.resume] — per-tenant results are
    bit-identical to an uninterrupted run. Completed jobs persist the
    shared database, so a later job with an already-solved workload
    replays the stored trace ([db.replayed]) instead of searching.

    Completed jobs also fold their trained cost model into [model.txt]
    ({!Tir_autosched.Model.Store.absorb}); at startup the server reads
    the store once and warm-starts every fresh session from it
    ([Model.Warm] spec, recorded in the session's WAL meta — so
    kill+resume never depends on the moving store file).

    Metrics: [serve.jobs_started], [serve.jobs_adopted],
    [serve.jobs_done], [serve.jobs_failed]. *)

module W = Tir_workloads.Workloads
module Tune = Tir_autosched.Tune

type job = {
  j_name : string;  (** filesystem-safe: [A-Za-z0-9._-]+, max 128 *)
  j_workload : string;  (** workload tag, resolved per target kind *)
  j_target : string;
  j_seed : int;
  j_trials : int;
  j_priority : int;
}

type state = Pending | Running | Done | Failed

val state_dir : state -> string

(** [parse_job ~name text] parses a job file body. Raises
    [Tir_core.Error.Error] with kind [Parse] on any malformed input. *)
val parse_job : name:string -> string -> job

val job_to_string : job -> string

(** Resolve the job's (target, workload): GPU targets take the tag's
    default shape, CPU targets substitute the int8 conv/gemm variants.
    [Parse] error for unknown names. *)
val resolve : name:string -> job -> Tir_sim.Target.t * W.t

(** Create the queue directory layout (idempotent). *)
val ensure_queue : string -> unit

(** Atomically drop a job into [pending/]; returns the job-file path.
    [Io] error if a job of that name exists in any state. *)
val submit : queue:string -> job -> string

(** All jobs and their current states, sorted by name. *)
val list_jobs : queue:string -> (string * state) list

val find_job : string -> string -> state option

(** Parsed [key=value] pairs of a completed job's result file
    ([status], [workload], [target], [seed], [trials], [trials_done],
    [gflops], and for [status=ok]: [latency_us] (hex float), [sketch],
    [trace]). *)
val read_result : queue:string -> name:string -> (string * string) list

(** Parsed [key=value] pairs of a failed job's diagnostic
    ([status=failed], [kind], [exit_code], [message]). *)
val read_error : queue:string -> name:string -> (string * string) list

val job_file : string -> state -> string -> string
val wal_file : string -> state -> string -> string
val result_file : string -> string -> string
val error_file : string -> string -> string
val db_file : string -> string

(** The shared cost-model store maintained next to {!db_file}. *)
val model_file : string -> string

type config = {
  queue : string;
  jobs : int option;
      (** server-private pool size; [None] = the shared [TIR_JOBS] pool *)
  drain : bool;  (** exit once pending and running are empty *)
  max_steps : int option;
      (** total session-step budget across all tenants — the
          deterministic kill point for crash testing *)
  metrics_out : string option;
      (** dump {!Tir_obs.Metrics.snapshot_json} here (atomic tmp+rename)
          on every scheduler event, after every scheduler run, and on
          every idle poll tick *)
  telemetry_out : string option;
      (** {!Tir_obs.Telemetry.render} exposition, same cadence and
          atomicity — the snapshot [tensorir top] reads *)
  trace_out : string option;
      (** enable {!Tir_obs.Trace} and snapshot the Chrome trace-event
          JSON here, same cadence and atomicity *)
  poll_interval_s : float;
      (** pending/ poll cadence when not draining — also the telemetry
          snapshot cadence while idle *)
}

(** Drain mode, shared pool, no step budget, no metrics dump. *)
val default_config : string -> config

type outcome = {
  o_completed : int;
  o_failed : int;
  o_budget : bool;
      (** stopped on [max_steps]; committed work remains in [running/]
          and a later {!serve} resumes it *)
}

(** Run the server: adopt orphans from [running/], scan [pending/],
    interleave all jobs through a {!Scheduler} (priorities weight the
    round-robin), and publish results. Returns on [max_steps]
    exhaustion, or — in drain mode — when the queue is empty; otherwise
    polls [pending/] forever. *)
val serve : config -> outcome
