(** Crash-safe resumable tuning sessions. See the interface for the log
    grammar and the recovery contract. *)

module W = Tir_workloads.Workloads
module Tune = Tir_autosched.Tune
module Evo = Tir_autosched.Evolutionary
module Model = Tir_autosched.Model
module Database = Tir_autosched.Database
module Error = Tir_core.Error
module Metrics = Tir_obs.Metrics
module Span = Tir_obs.Span
module Trace = Tir_sched.Trace

let m_resumes = Metrics.counter "session.resumes"
let m_generations = Metrics.counter "session.generations"
let m_discarded = Metrics.counter "session.discarded"
let m_compactions = Metrics.counter "session.compactions"

exception Halted of { path : string; gen : int }

let () =
  Printexc.register_printer (function
    | Halted { path; gen } ->
        Some (Printf.sprintf "Session.Halted(%s, gen %d)" path gen)
    | _ -> None)

let corrupt ~path fmt =
  Printf.ksprintf (fun msg -> Error.raise_error ~context:path Error.Corrupt msg) fmt

(* Hex float serialization round-trips every bit — latencies feed the
   cost model and the elite ranking, so "close" is not good enough. *)
let fl = Printf.sprintf "%h"
let esc = Database.escape
let unesc = Database.unescape

(* --- record grammar ----------------------------------------------------- *)

(* Cumulative stats snapshot embedded in [gen] and [done] records. *)
let stats_fields (s : Evo.stats) =
  [
    string_of_int s.Evo.trials;
    string_of_int s.Evo.proposed;
    string_of_int s.Evo.invalid;
    string_of_int s.Evo.unsound;
    string_of_int s.Evo.inapplicable;
    string_of_int s.Evo.unmeasurable;
    string_of_int s.Evo.cache_hits;
    string_of_int s.Evo.cache_lookups;
    fl s.Evo.profiling_us;
  ]

let stats_width = 9

let stats_of_fields ~path fields =
  let num s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> corrupt ~path "bad stats field %S" s
  in
  match fields with
  | [ trials; proposed; invalid; unsound; inapplicable; unmeasurable;
      cache_hits; cache_lookups; profiling ] ->
      let s = Evo.new_stats () in
      s.Evo.trials <- num trials;
      s.Evo.proposed <- num proposed;
      s.Evo.invalid <- num invalid;
      s.Evo.unsound <- num unsound;
      s.Evo.inapplicable <- num inapplicable;
      s.Evo.unmeasurable <- num unmeasurable;
      s.Evo.cache_hits <- num cache_hits;
      s.Evo.cache_lookups <- num cache_lookups;
      (match float_of_string_opt profiling with
      | Some p -> s.Evo.profiling_us <- p
      | None -> corrupt ~path "bad profiling field %S" profiling);
      s
  | _ -> corrupt ~path "bad stats snapshot (%d fields)" (List.length fields)

let meta_line ~(w : W.t) ~(target : Tir_sim.Target.t) (cfg : Tune.Config.t) =
  String.concat "|"
    [
      "meta";
      esc w.W.tag;
      esc w.W.name;
      esc target.Tir_sim.Target.name;
      string_of_int cfg.Tune.Config.seed;
      string_of_int cfg.Tune.Config.trials;
      (if cfg.Tune.Config.use_cost_model then "1" else "0");
      (if cfg.Tune.Config.evolve then "1" else "0");
      esc (Model.spec_to_string cfg.Tune.Config.model);
    ]

let seen_line ~gen keys =
  String.concat "|" (("seen" :: string_of_int gen :: List.map esc keys))

let measure_line ~gen (m : Evo.measured) =
  String.concat "|"
    [
      "measure";
      string_of_int gen;
      esc m.Evo.sketch_name;
      esc m.Evo.base;
      fl m.Evo.latency_us;
      esc (Trace.to_string m.Evo.trace);
    ]

let gen_line ~gen stats ~best_us =
  String.concat "|"
    (("gen" :: string_of_int gen :: stats_fields stats) @ [ fl best_us ])

let done_line stats ~best_us (best : Evo.measured option) =
  let best_fields =
    match best with
    | Some m ->
        [ "1"; esc m.Evo.sketch_name; esc m.Evo.base; fl m.Evo.latency_us;
          esc (Trace.to_string m.Evo.trace) ]
    | None -> [ "0"; ""; ""; ""; "" ]
  in
  String.concat "|" (("done" :: stats_fields stats) @ (fl best_us :: best_fields))

(* --- log parsing -------------------------------------------------------- *)

type raw_measure = {
  rm_sketch : string;
  rm_base : string;
  rm_latency : float;
  rm_trace : string;  (** unescaped trace text, parsed lazily *)
}

type parsed = {
  p_tag : string;
  p_wname : string;
  p_tname : string;
  p_seed : int;
  p_trials : int;
  p_ucm : bool;
  p_evolve : bool;
  p_model : Model.spec;
  p_committed : string list;  (** canonical committed lines, meta first *)
  p_next_gen : int;
  p_seen : string list;  (** committed dedup keys, original order *)
  p_measured : raw_measure list;  (** committed, original order *)
  p_stats : Evo.stats option;  (** snapshot at the last commit marker *)
  p_best_us : float;
  p_done : (Evo.stats * float * raw_measure option) option;
  p_discarded : int;  (** uncommitted records dropped *)
}

let parse_raw_measure ~path = function
  | [ g; sketch; base; latency; trace ] -> (
      match (int_of_string_opt g, float_of_string_opt latency) with
      | Some g, Some l ->
          ( g,
            {
              rm_sketch = unesc sketch;
              rm_base = unesc base;
              rm_latency = l;
              rm_trace = unesc trace;
            } )
      | _ -> corrupt ~path "bad measure record")
  | _ -> corrupt ~path "bad measure record"

(* Classify one record line. Raises [Error] (kind [Corrupt]) on garbage —
   the caller decides whether a torn tail gets that treatment. *)
type record =
  | R_seen of int * string list
  | R_measure of int * raw_measure
  | R_gen of int * Evo.stats * float
  | R_done of Evo.stats * float * raw_measure option

let parse_record ~path line =
  match String.split_on_char '|' line with
  | "seen" :: g :: keys -> (
      match int_of_string_opt g with
      | Some g -> R_seen (g, List.map unesc keys)
      | None -> corrupt ~path "bad seen record")
  | "measure" :: rest ->
      let g, rm = parse_raw_measure ~path rest in
      R_measure (g, rm)
  | "gen" :: g :: rest when List.length rest = stats_width + 1 -> (
      match int_of_string_opt g with
      | None -> corrupt ~path "bad gen record"
      | Some g ->
          let stats_f = List.filteri (fun i _ -> i < stats_width) rest in
          let best = List.nth rest stats_width in
          let best_us =
            match float_of_string_opt best with
            | Some b -> b
            | None -> corrupt ~path "bad gen best field %S" best
          in
          R_gen (g, stats_of_fields ~path stats_f, best_us))
  | "done" :: rest when List.length rest = stats_width + 6 ->
      let stats_f = List.filteri (fun i _ -> i < stats_width) rest in
      let tail = List.filteri (fun i _ -> i >= stats_width) rest in
      (match tail with
      | [ best_us; has; sketch; base; latency; trace ] ->
          let best_us =
            match float_of_string_opt best_us with
            | Some b -> b
            | None -> corrupt ~path "bad done best field"
          in
          let best =
            if String.equal has "1" then
              match float_of_string_opt latency with
              | Some l ->
                  Some
                    {
                      rm_sketch = unesc sketch;
                      rm_base = unesc base;
                      rm_latency = l;
                      rm_trace = unesc trace;
                    }
              | None -> corrupt ~path "bad done latency field"
            else None
          in
          R_done (stats_of_fields ~path stats_f, best_us, best)
      | _ -> corrupt ~path "bad done record")
  | _ -> corrupt ~path "unrecognized session record: %s" line

let parse ~path =
  let lines, torn = Wal.read ~path in
  match lines with
  | [] -> corrupt ~path "empty or missing session log"
  | meta :: rest ->
      (* Logs written before the model field existed have 8 meta fields;
         they read back as the historical default (a fresh GBDT). *)
      let parse_meta fields spec =
        match fields with
        | [ "meta"; tag; name; tname; seed; trials; ucm; evolve ] -> (
            match (int_of_string_opt seed, int_of_string_opt trials) with
            | Some seed, Some trials ->
                let model =
                  match spec with
                  | None -> Model.Gbdt
                  | Some s -> (
                      match Model.spec_of_string (unesc s) with
                      | m -> m
                      | exception Model.Parse_error _ ->
                          corrupt ~path "bad meta model field")
                in
                ( unesc tag, unesc name, unesc tname, seed, trials,
                  String.equal ucm "1", String.equal evolve "1", model )
            | _ -> corrupt ~path "bad meta record")
        | _ -> corrupt ~path "missing meta record"
      in
      let p_tag, p_wname, p_tname, p_seed, p_trials, p_ucm, p_evolve, p_model =
        match String.split_on_char '|' meta with
        | [ _; _; _; _; _; _; _; _; spec ] as fields ->
            parse_meta (List.filteri (fun i _ -> i < 8) fields) (Some spec)
        | fields -> parse_meta fields None
      in
      (* Committed state grows only at [gen]/[done] markers; everything
         newer is pending and may be discarded. *)
      let committed = ref [ meta ] in
      let c_seen = ref [] and c_meas = ref [] in
      let pend_lines = ref [] and pend_seen = ref [] and pend_meas = ref [] in
      let next_gen = ref 0 in
      let stats = ref None and best_us = ref Float.nan in
      let done_ = ref None in
      let apply line = function
        | R_seen (_, keys) ->
            pend_lines := line :: !pend_lines;
            pend_seen := List.rev_append keys !pend_seen
        | R_measure (_, rm) ->
            pend_lines := line :: !pend_lines;
            pend_meas := rm :: !pend_meas
        | R_gen (g, s, b) ->
            if g <> !next_gen then
              corrupt ~path "commit marker out of sequence (gen %d, expected %d)"
                g !next_gen;
            committed := (line :: !pend_lines) @ !committed;
            c_seen := !pend_seen @ !c_seen;
            c_meas := !pend_meas @ !c_meas;
            pend_lines := [];
            pend_seen := [];
            pend_meas := [];
            next_gen := g + 1;
            stats := Some s;
            best_us := b
        | R_done (s, b, best) ->
            committed := line :: !committed;
            done_ := Some (s, b, best)
      in
      List.iter
        (fun line ->
          if !done_ <> None then corrupt ~path "records after done marker";
          let trimmed = String.trim line in
          if trimmed <> "" && trimmed.[0] <> '#' then
            apply line (parse_record ~path line))
        rest;
      (* Torn tail: salvage it when it parses, drop it silently when it
         does not — a crash mid-append is expected, garbage mid-file is
         not. *)
      (match torn with
      | Some frag when !done_ = None && String.trim frag <> "" -> (
          match parse_record ~path frag with
          | r -> apply frag r
          | exception Error.Error _ -> ())
      | _ -> ());
      let discarded = List.length !pend_lines in
      {
        p_tag;
        p_wname;
        p_tname;
        p_seed;
        p_trials;
        p_ucm;
        p_evolve;
        p_model;
        p_committed = List.rev !committed;
        p_next_gen = !next_gen;
        p_seen = List.rev !c_seen;
        p_measured = List.rev !c_meas;
        p_stats = !stats;
        p_best_us = !best_us;
        p_done = !done_;
        p_discarded = discarded;
      }

(* --- rebuilding search state -------------------------------------------- *)

(* A measured candidate is stored as (sketch, base, latency, trace); the
   program itself is rebuilt by replaying the trace onto the base
   function — replay is pure, so the rebuilt func is structurally the one
   that was measured. *)
let measured_of_raw ~path ~(w : W.t) rm : Evo.measured =
  let trace =
    match Trace.of_string_result rm.rm_trace with
    | Ok t -> t
    | Error e -> corrupt ~path "bad trace in measure record: %s" e.Error.message
  in
  match Database.base_func w rm.rm_base with
  | None -> corrupt ~path "unknown base intrinsic %S in measure record" rm.rm_base
  | Some f -> (
      match Tir_sched.Schedule.replay trace f with
      | exception Tir_sched.State.Schedule_error msg ->
          corrupt ~path "unreplayable trace in measure record: %s" msg
      | sch ->
          {
            Evo.sketch_name = rm.rm_sketch;
            base = rm.rm_base;
            decisions = Trace.decisions trace;
            trace;
            func = Tir_sched.Schedule.func sch;
            latency_us = rm.rm_latency;
          })

(* Best-curve reconstruction mirrors [Evolutionary]'s [consider]: the
   trial counter ticks per measurement, improvements push a point. *)
let curve_of_latencies lats =
  let trials = ref 0 and best = ref Float.infinity and curve = ref [] in
  List.iter
    (fun l ->
      incr trials;
      if l < !best then begin
        best := l;
        curve := (!trials, l) :: !curve
      end)
    lats;
  !curve

(* --- sessions ----------------------------------------------------------- *)

type t = {
  s_path : string;
  s_cfg : Tune.Config.t;
  s_w : W.t;
  s_target : Tir_sim.Target.t;
  s_resume : Evo.resume option;
  s_measured_raw : raw_measure list;
  s_done : (Evo.stats * float * raw_measure option) option;
  mutable s_writer : Wal.writer option;
  mutable s_gens_this_run : int;
}

let path t = t.s_path

let close t =
  match t.s_writer with
  | None -> ()
  | Some wr ->
      Wal.close wr;
      t.s_writer <- None

let writer t =
  match t.s_writer with
  | Some wr -> wr
  | None -> Error.raise_error ~context:t.s_path Error.Io "session is closed"

let create ?(force = false) ~path (cfg : Tune.Config.t) (w : W.t) target =
  if cfg.Tune.Config.sketches <> None then
    invalid_arg "Session.create: cfg.sketches is not serializable";
  if (not force) && Sys.file_exists path
     && (try (Unix.stat path).Unix.st_size > 0 with Unix.Unix_error _ -> false)
  then
    Error.raise_error ~context:path Error.Io
      "session log already exists (resume it, or pass ~force:true)";
  Wal.rewrite ~path [ meta_line ~w ~target cfg ];
  {
    s_path = path;
    s_cfg = cfg;
    s_w = w;
    s_target = target;
    s_resume = None;
    s_measured_raw = [];
    s_done = None;
    s_writer = Some (Wal.open_append ~path ~start_index:1);
    s_gens_this_run = 0;
  }

let compact_parsed ~path (p : parsed) =
  Wal.rewrite ~path p.p_committed;
  Metrics.incr m_compactions

let compact ~path = compact_parsed ~path (parse ~path)

let resume ?workload ?jobs ?journal ?database ?retry ~path () =
  Span.with_span "session.resume" (fun () ->
      Metrics.incr m_resumes;
      let p = parse ~path in
      let w =
        match workload with
        | Some w ->
            if not (String.equal w.W.name p.p_wname) then
              corrupt ~path "workload mismatch: log has %S, got %S" p.p_wname
                w.W.name;
            w
        | None -> (
            match W.by_tag p.p_tag with
            | w when String.equal w.W.name p.p_wname -> w
            | _ ->
                corrupt ~path
                  "workload %S is not tag %s's default shape; pass ~workload"
                  p.p_wname p.p_tag
            | exception _ -> corrupt ~path "unknown workload tag %S" p.p_tag)
      in
      let target =
        match Tir_sim.Target.by_name p.p_tname with
        | t -> t
        | exception _ -> corrupt ~path "unknown target %S" p.p_tname
      in
      let cfg =
        {
          Tune.Config.default with
          Tune.Config.seed = p.p_seed;
          trials = p.p_trials;
          use_cost_model = p.p_ucm;
          evolve = p.p_evolve;
          model = p.p_model;
          jobs;
          journal;
          database;
          retry = Option.value retry ~default:Tune.Config.default.Tune.Config.retry;
        }
      in
      Metrics.add m_discarded p.p_discarded;
      (* Drop the uncommitted tail *atomically* before appending anything:
         a second resume must never see a stale partial generation in the
         middle of the log. *)
      compact_parsed ~path p;
      let resume_state =
        if p.p_done <> None then None
        else
          Some
            {
              Evo.r_gen = p.p_next_gen;
              r_seen = p.p_seen;
              r_measured = List.map (measured_of_raw ~path ~w) p.p_measured;
              r_stats =
                (match p.p_stats with
                | Some s -> s
                | None -> Evo.new_stats ());
            }
      in
      {
        s_path = path;
        s_cfg = cfg;
        s_w = w;
        s_target = target;
        s_resume = resume_state;
        s_measured_raw = p.p_measured;
        s_done = p.p_done;
        s_writer =
          (if p.p_done = None then
             Some (Wal.open_append ~path ~start_index:(List.length p.p_committed))
           else None);
        s_gens_this_run = 0;
      })

let reconstruct_result t (stats, _best_us, best_raw) : Tune.result =
  let best = Option.map (measured_of_raw ~path:t.s_path ~w:t.s_w) best_raw in
  stats.Evo.best_curve <-
    curve_of_latencies (List.map (fun rm -> rm.rm_latency) t.s_measured_raw);
  { Tune.workload = t.s_w; target = t.s_target; best; stats; model = None }

let env_halt_after () =
  Option.bind (Sys.getenv_opt "TIR_HALT_AFTER_GEN") int_of_string_opt

(* --- stepping ----------------------------------------------------------- *)

type stepper = {
  st_t : t;
  st_driver : Tune.driver option;  (** [None]: the log was already done *)
  mutable st_result : Tune.result option;  (** set at the [`Done] transition *)
  mutable st_best_us : float;
      (** live best after the last step; NaN until something measured.
          Read by the scheduler for per-tenant gauges and stall
          detection. *)
  mutable st_rank_corr : float;
      (** cumulative model rank correlation after the last step; 0.0
          until two candidates measured. Read by the scheduler for the
          per-tenant [tenant.<name>.rank_corr] gauge. *)
}

type step_result = [ `Stepped of int | `Done of Tune.result ]

let start ?pool t =
  match t.s_done with
  | Some d ->
      let r = reconstruct_result t d in
      let best =
        match r.Tune.best with Some b -> b.Evo.latency_us | None -> Float.nan
      in
      { st_t = t; st_driver = None; st_result = Some r; st_best_us = best;
        st_rank_corr = 0.0 }
  | None ->
      let wr = writer t in
      (* The WAL hooks; one generation's records become durable at the
         [gen] commit marker appended by [on_generation]. Halting policy
         lives in the drivers ([run]'s halt_after check, the scheduler's
         step budget) — the hook itself never raises, so a stepper can be
         preempted and re-stepped at any generation boundary. *)
      let checkpoint =
        {
          Evo.on_seen =
            (fun ~gen keys ->
              Wal.append wr (seen_line ~gen keys);
              Tir_obs.Trace.instant "wal.seen"
                ~args:
                  [ ("gen", string_of_int gen);
                    ("keys", string_of_int (List.length keys)) ]);
          on_measured =
            (fun ~gen m ->
              Wal.append wr (measure_line ~gen m);
              Tir_obs.Trace.instant "wal.measure"
                ~args:
                  [ ("gen", string_of_int gen);
                    ("sketch", m.Evo.sketch_name);
                    ("latency_us", fl m.Evo.latency_us) ]);
          on_generation =
            (fun ~gen stats ~best_us ->
              Wal.append wr (gen_line ~gen stats ~best_us);
              (* the gen line is the commit marker — the durability
                 checkpoint worth seeing on a trace timeline *)
              Tir_obs.Trace.instant "wal.checkpoint"
                ~args:
                  [ ("gen", string_of_int gen);
                    ("trials", string_of_int stats.Evo.trials);
                    ("best_us", fl best_us) ];
              Metrics.incr m_generations;
              t.s_gens_this_run <- t.s_gens_this_run + 1);
        }
      in
      let d =
        Tune.prepare ~checkpoint ?resume:t.s_resume ?pool t.s_cfg t.s_w
          t.s_target
      in
      { st_t = t; st_driver = Some d; st_result = None; st_best_us = Float.nan;
        st_rank_corr = 0.0 }

let best_us st = st.st_best_us
let rank_corr st = st.st_rank_corr

let step st : step_result =
  match st.st_result with
  | Some r -> `Done r
  | None -> (
      let t = st.st_t in
      match st.st_driver with
      | None -> assert false (* st_result is always set when driver is absent *)
      | Some d -> (
          match
            Tir_obs.Trace.with_ctx ~session:t.s_path (fun () -> Tune.step d)
          with
          | Tune.Stepped { gen; best_us; rank_corr; _ } ->
              st.st_best_us <- best_us;
              st.st_rank_corr <- rank_corr;
              `Stepped gen
          | Tune.Finished result ->
              let best_us =
                match result.Tune.best with
                | Some b -> b.Evo.latency_us
                | None -> Float.nan
              in
              Wal.append (writer t)
                (done_line result.Tune.stats ~best_us result.Tune.best);
              close t;
              st.st_result <- Some result;
              st.st_best_us <- best_us;
              `Done result))

let abort st =
  (* The WAL is already consistent (every append was flushed); just stop
     writing and join any driver-owned pool. [Halted] and injected faults
     reach the caller with the log committed through the last marker. *)
  Option.iter Tune.release st.st_driver;
  close st.st_t

let run ?halt_after t : Tune.result =
  match t.s_done with
  | Some d -> reconstruct_result t d
  | None ->
      let halt_after =
        match halt_after with Some h -> Some h | None -> env_halt_after ()
      in
      Span.with_span "session.run" (fun () ->
          let st = start t in
          let rec drive () =
            match step st with
            | `Done r -> r
            | `Stepped gen -> (
                match halt_after with
                | Some h when t.s_gens_this_run >= h ->
                    raise (Halted { path = t.s_path; gen })
                | _ -> drive ())
          in
          match drive () with
          | r -> r
          | exception e ->
              abort st;
              raise e)

type status = {
  workload : string;
  target : string;
  seed : int;
  trials_target : int;
  trials_done : int;
  generations : int;
  completed : bool;
  best_us : float option;
}

let status ~path =
  let p = parse ~path in
  let stats, best_us, completed =
    match p.p_done with
    | Some (s, b, _) -> (Some s, b, true)
    | None -> (p.p_stats, p.p_best_us, false)
  in
  {
    workload = p.p_wname;
    target = p.p_tname;
    seed = p.p_seed;
    trials_target = p.p_trials;
    trials_done = (match stats with Some s -> s.Evo.trials | None -> 0);
    generations = p.p_next_gen;
    completed;
    best_us = (if Float.is_finite best_us then Some best_us else None);
  }
