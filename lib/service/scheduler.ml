(** Multi-tenant fair-share scheduler over steppable sessions.

    Many concurrent tuning sessions — each with a priority and its own
    WAL — share one domain pool, one measurement memo, one apply cache,
    and one trace database. The scheduler interleaves them one
    generation at a time ({!Session.step}) with a deficit round-robin:
    every round each live tenant's deficit grows by its priority, and
    the tenant takes one step per whole unit of deficit. Over N rounds a
    priority-2 tenant therefore gets ~2× the generations of a
    priority-1 tenant — and because the loop is cooperative (exactly one
    tenant steps at a time; parallelism lives {e inside} a step, in the
    engine's pool fan-outs) the interleaving is a pure function of the
    submission order, the priorities, and each tenant's own
    deterministic search. Preemption happens only at generation
    boundaries, where the engine has already committed its WAL records —
    so killing the whole server and resuming every tenant from its WAL
    reproduces each tenant's result bit-identically, exactly as for a
    standalone session.

    Shared-cache keying keeps tenants independent: the measurement memo
    keys on (target fingerprint, program fingerprint), the apply cache
    on (parent trace node, instruction), and the database on (target,
    workload) — all pure functions of the work itself, never of the
    tenant — so sharing changes hit counters, never results. The payoff
    is cross-tenant amortization: a tenant submitting a workload another
    tenant already solved replays the stored trace instead of searching
    ([db.replayed]). *)

module Tune = Tir_autosched.Tune
module Error = Tir_core.Error
module Metrics = Tir_obs.Metrics
module Pool = Tir_parallel.Pool
module Trace = Tir_obs.Trace
module Stall = Tir_obs.Stall

type outcome = Completed of Tune.result | Failed of Error.t

type event =
  | Step of { tenant : string; gen : int }
  | Complete of { tenant : string; result : Tune.result }
  | Fail of { tenant : string; error : Error.t }

type stop = Idle | Budget

type tenant = {
  tn_name : string;
  tn_priority : int;
  tn_session : Session.t;
  mutable tn_stepper : Session.stepper option;  (** created at first step *)
  mutable tn_deficit : int;
  mutable tn_gens : int;
  mutable tn_outcome : outcome option;
  tn_m_steps : Metrics.counter;
  tn_m_gens : Metrics.counter;
  tn_m_best : Metrics.gauge;
  tn_m_rank : Metrics.gauge;
  tn_m_stalled : Metrics.gauge;
  tn_stall : Stall.t;
}

type t = {
  sch_pool : Pool.t;
  mutable sch_tenants : tenant list;  (** submission order *)
  mutable sch_steps : int;  (** Session.step calls over this scheduler's life *)
}

let m_submitted = Metrics.counter "scheduler.tenants_submitted"
let m_completed = Metrics.counter "scheduler.tenants_completed"
let m_failed = Metrics.counter "scheduler.tenants_failed"
let m_steps = Metrics.counter "scheduler.steps"
let m_active = Metrics.gauge "scheduler.active_tenants"
let m_stalled = Metrics.counter "search.stalled"
let m_stalled_tenants = Metrics.gauge "search.stalled_tenants"

(* Generations without an improvement in best-µs before a tenant is
   declared stalled (the [search.stalled] event + per-tenant gauge —
   direct input to the cost-model diagnosis). *)
let stall_threshold () =
  match Option.bind (Sys.getenv_opt "TIR_STALL_GENS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> Stall.default_threshold

let create ?pool () =
  let sch_pool = match pool with Some p -> p | None -> Pool.global () in
  { sch_pool; sch_tenants = []; sch_steps = 0 }

let pool t = t.sch_pool

let submit ?(priority = 1) t ~name session =
  if List.exists (fun tn -> String.equal tn.tn_name name) t.sch_tenants then
    invalid_arg (Printf.sprintf "Scheduler.submit: duplicate tenant %S" name);
  let tn =
    {
      tn_name = name;
      (* priority 0 would starve the tenant forever; clamp. *)
      tn_priority = max 1 priority;
      tn_session = session;
      tn_stepper = None;
      tn_deficit = 0;
      tn_gens = 0;
      tn_outcome = None;
      tn_m_steps = Metrics.counter ("tenant." ^ name ^ ".steps");
      tn_m_gens = Metrics.counter ("tenant." ^ name ^ ".generations");
      tn_m_best = Metrics.gauge ("tenant." ^ name ^ ".best_us");
      tn_m_rank = Metrics.gauge ("tenant." ^ name ^ ".rank_corr");
      tn_m_stalled = Metrics.gauge ("tenant." ^ name ^ ".stalled");
      tn_stall = Stall.create ~threshold:(stall_threshold ()) ();
    }
  in
  Metrics.incr m_submitted;
  t.sch_tenants <- t.sch_tenants @ [ tn ]

let active t =
  List.length (List.filter (fun tn -> tn.tn_outcome = None) t.sch_tenants)

let outcomes t =
  List.filter_map
    (fun tn -> Option.map (fun o -> (tn.tn_name, o)) tn.tn_outcome)
    t.sch_tenants

let generations t = List.map (fun tn -> (tn.tn_name, tn.tn_gens)) t.sch_tenants
let steps_taken t = t.sch_steps

(* One Session.step of one tenant, with per-tenant fault isolation: a
   tenant whose step raises a classified error ([Error.Error] — corrupt
   WAL, I/O failure, injected fault surfacing) is marked [Failed] and its
   stepper aborted (WAL stays committed through its last marker); the
   loop and the other tenants keep running. Anything else is a
   programming error and propagates. *)
let stalled_count t =
  List.length
    (List.filter
       (fun tn -> tn.tn_outcome = None && Stall.is_stalled tn.tn_stall)
       t.sch_tenants)

(* Feed the stall watchdog one generation's best. Sequential (the loop is
   cooperative), so verdicts and the emitted events are deterministic. *)
let observe_stall t tn ~best_us =
  (match Stall.observe tn.tn_stall ~best_us with
  | Stall.Stalled ->
      Metrics.incr m_stalled;
      Metrics.set tn.tn_m_stalled 1.0;
      Trace.instant "search.stalled"
        ~args:
          [
            ("gens_without_improvement", string_of_int (Stall.age tn.tn_stall));
            ("threshold", string_of_int (Stall.threshold tn.tn_stall));
          ]
  | Stall.Improved -> Metrics.set tn.tn_m_stalled 0.0
  | Stall.Ok | Stall.Still_stalled -> ());
  Metrics.set m_stalled_tenants (float_of_int (stalled_count t))

let step_tenant t ~on_event tn =
  Trace.with_ctx ~tenant:tn.tn_name @@ fun () ->
  Trace.with_span "scheduler.slice" @@ fun () ->
  t.sch_steps <- t.sch_steps + 1;
  Metrics.incr m_steps;
  Metrics.incr tn.tn_m_steps;
  let stepper =
    match tn.tn_stepper with
    | Some st -> st
    | None ->
        let st = Session.start ~pool:t.sch_pool tn.tn_session in
        tn.tn_stepper <- Some st;
        st
  in
  match Session.step stepper with
  | `Stepped gen ->
      tn.tn_gens <- tn.tn_gens + 1;
      Metrics.incr tn.tn_m_gens;
      (* Live per-tenant telemetry: the gauge used to be set only at
         completion, so `tensorir top` saw NaN for every running tenant. *)
      let best_us = Session.best_us stepper in
      Metrics.set tn.tn_m_best best_us;
      Metrics.set tn.tn_m_rank (Session.rank_corr stepper);
      observe_stall t tn ~best_us;
      on_event (Step { tenant = tn.tn_name; gen })
  | `Done result ->
      tn.tn_outcome <- Some (Completed result);
      Metrics.incr m_completed;
      Metrics.set tn.tn_m_best
        (match result.Tune.best with
        | Some b -> b.Tir_autosched.Evolutionary.latency_us
        | None -> Float.nan);
      Metrics.set tn.tn_m_stalled 0.0;
      Metrics.set m_stalled_tenants (float_of_int (stalled_count t));
      Trace.instant "tenant.complete";
      on_event (Complete { tenant = tn.tn_name; result })
  | exception Error.Error err ->
      (match tn.tn_stepper with
      | Some st -> Session.abort st
      | None -> ());
      tn.tn_outcome <- Some (Failed err);
      Metrics.incr m_failed;
      on_event (Fail { tenant = tn.tn_name; error = err })

let run ?max_steps ?(on_event = fun _ -> ()) t : stop =
  let steps_left = ref (match max_steps with Some n -> max 0 n | None -> -1) in
  let budget_ok () = !steps_left <> 0 in
  let spend () = if !steps_left > 0 then decr steps_left in
  let rec rounds () =
    let live = List.filter (fun tn -> tn.tn_outcome = None) t.sch_tenants in
    Metrics.set m_active (float_of_int (List.length live));
    if live = [] then Idle
    else begin
      List.iter
        (fun tn ->
          if tn.tn_outcome = None && budget_ok () then begin
            tn.tn_deficit <- tn.tn_deficit + tn.tn_priority;
            while tn.tn_outcome = None && tn.tn_deficit >= 1 && budget_ok () do
              tn.tn_deficit <- tn.tn_deficit - 1;
              spend ();
              step_tenant t ~on_event tn
            done;
            (* A finished tenant cannot bank credit for a neighbour. *)
            if tn.tn_outcome <> None then tn.tn_deficit <- 0
          end)
        live;
      if budget_ok () then rounds ()
      else begin
        Metrics.set m_active (float_of_int (active t));
        Budget
      end
    end
  in
  rounds ()
