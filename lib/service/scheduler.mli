(** Multi-tenant fair-share scheduler over steppable sessions.

    Interleaves many tuning sessions on one shared domain pool, one
    generation ({!Session.step}) at a time, with deficit round-robin
    weighted by priority: each round every live tenant's deficit grows
    by its priority and it takes one step per whole unit, so a
    priority-2 tenant gets ~2× the generations of a priority-1 tenant
    while both make progress. The loop is cooperative — exactly one
    tenant steps at a time, parallelism lives inside the step's pool
    fan-outs — so the interleaving is deterministic, preemption lands
    only at generation boundaries (WAL already committed), and each
    tenant's result is bit-identical to running its session standalone
    at any [TIR_JOBS], including after killing and resuming the whole
    server from the tenants' WALs.

    Tenants share the process-wide measurement memo, the apply cache,
    and (when sessions are resumed/created with one) a trace database —
    all keyed by target/program/workload fingerprints, never by tenant,
    so sharing accelerates without perturbing. A tenant submitting an
    already-solved workload replays the stored trace ([db.replayed])
    instead of searching.

    Metrics: [scheduler.tenants_submitted]/[tenants_completed]/
    [tenants_failed]/[steps] counters, [scheduler.active_tenants] gauge,
    and per-tenant [tenant.<name>.steps]/[.generations] counters plus a
    [tenant.<name>.best_us] gauge. *)

module Tune = Tir_autosched.Tune

type t

type outcome =
  | Completed of Tune.result
  | Failed of Tir_core.Error.t
      (** the tenant's step raised a classified error; its WAL stays
          committed through the last generation marker *)

type event =
  | Step of { tenant : string; gen : int }  (** one generation committed *)
  | Complete of { tenant : string; result : Tune.result }
  | Fail of { tenant : string; error : Tir_core.Error.t }

type stop =
  | Idle  (** every tenant reached an outcome *)
  | Budget  (** [max_steps] spent; call {!run} again to continue *)

(** [pool] is the shared domain pool every tenant's fan-outs run on
    (default: the process-wide [TIR_JOBS]-sized pool). *)
val create : ?pool:Tir_parallel.Pool.t -> unit -> t

val pool : t -> Tir_parallel.Pool.t

(** Add a tenant (FIFO position = submission order; names must be
    unique — [Invalid_argument] otherwise). [priority] is clamped to
    [>= 1]. The session may be fresh ([Session.create]) or reopened
    ([Session.resume]); stepping starts lazily at the tenant's first
    scheduled step. *)
val submit : ?priority:int -> t -> name:string -> Session.t -> unit

(** Drive the round-robin until every tenant completes or fails
    ([Idle]) or [max_steps] session-steps were taken this call
    ([Budget] — the kill point: every WAL is committed, so the process
    can exit and a fresh scheduler can resume each tenant). [on_event]
    observes every transition synchronously from the scheduling loop. *)
val run : ?max_steps:int -> ?on_event:(event -> unit) -> t -> stop

(** Tenants not yet completed or failed. *)
val active : t -> int

(** Outcomes so far, in submission order (tenants still running are
    absent). *)
val outcomes : t -> (string * outcome) list

(** Generations each tenant has committed under this scheduler, in
    submission order. *)
val generations : t -> (string * int) list

(** [Session.step] calls made over this scheduler's lifetime. *)
val steps_taken : t -> int
