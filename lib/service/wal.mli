(** Line-oriented write-ahead log file: the durability primitive under
    [Session].

    A WAL is a plain text file of newline-terminated records. Appends are
    flushed per record, so after a crash the file holds every record that
    was ever acknowledged plus at most one torn (newline-less) tail, which
    {!read} hands back separately for the caller to salvage or drop.
    {!rewrite} replaces the whole file atomically (write to a temporary,
    then rename), which is how snapshots/compaction discard stale records
    without a window where the log is missing or half-written.

    Appends run under the fault-injection harness (site [Db_write] of
    [Tir_core.Fault]), keyed by the record's absolute line index — a pure
    function of the log's content, so injected WAL failures reproduce
    across resumed processes. Injected failures retry with deterministic
    backoff; exhaustion raises [Tir_core.Error.Error] with kind [Fault]
    {e before} anything is written (a failed append never tears the
    file).

    Metrics: [wal.appends], [wal.rewrites], [wal.torn_tail]. *)

type writer

(** Open [path] for appending. [start_index] is the number of records
    already in the file — the fault key of the next append. *)
val open_append : path:string -> start_index:int -> writer

(** Append one record ([line] must not contain newlines), flushed before
    returning. *)
val append : writer -> string -> unit

(** Absolute index of the next record to be appended. *)
val index : writer -> int

val close : writer -> unit

(** [read ~path] returns [(records, torn_tail)]: every complete
    (newline-terminated) record in order, plus the trailing newline-less
    fragment left by a crash mid-append, if any ([None] for a cleanly
    terminated file). A missing file reads as [([], None)]. *)
val read : path:string -> string list * string option

(** Atomically replace the log with exactly [records] (write to
    [path ^ ".tmp"], rename into place). *)
val rewrite : path:string -> string list -> unit
