(** Job-directory protocol behind [tensorir serve]/[submit]/[jobs].

    A queue directory holds four state subdirectories; a job is one
    [<name>.job] file that moves through them atomically (same-filesystem
    renames), so any observer — including a second [jobs] CLI process —
    always sees a consistent state:

    {v
    queue/
      pending/NAME.job     submitted, not yet picked up
      running/NAME.job     adopted by the server (+ NAME.wal session log)
      done/NAME.job        completed (+ NAME.result, NAME.wal kept)
      failed/NAME.job      rejected or errored (+ NAME.error diagnostic)
      db.txt               shared trace database (cross-tenant replay)
      model.txt            shared cost-model store (cross-workload warm start)
    v}

    Job files are line-oriented [key=value] (values percent-escaped with
    the database escaping; plain alphanumerics pass through untouched, so
    hand-written files work). Keys: [workload] (tag, required), [target]
    (default [gpu]), [seed] (default 42), [trials] (default 64),
    [priority] (default 1). Unknown keys, missing [workload], or
    non-numeric fields are [Parse] errors; a malformed job moves to
    [failed/] with a [NAME.error] diagnostic carrying the shared
    [Error.t] kind and exit code — the serve loop never wedges on bad
    input.

    The server kills cleanly at any generation boundary: every running
    tenant's WAL is committed, the job file stays in [running/], and the
    next [serve] adopts it via [Session.resume] — per-tenant results are
    bit-identical to an uninterrupted run. Completed jobs save the shared
    database, so a later tenant submitting an already-solved workload
    replays the stored trace instead of searching ([db.replayed]). *)

module W = Tir_workloads.Workloads
module Tune = Tir_autosched.Tune
module Model = Tir_autosched.Model
module Database = Tir_autosched.Database
module Error = Tir_core.Error
module Metrics = Tir_obs.Metrics

let esc = Database.escape
let unesc = Database.unescape
let fl = Printf.sprintf "%h"

type job = {
  j_name : string;
  j_workload : string;  (** workload tag (resolved per target kind) *)
  j_target : string;
  j_seed : int;
  j_trials : int;
  j_priority : int;
}

type state = Pending | Running | Done | Failed

let state_dir = function
  | Pending -> "pending"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"

let dir queue st = Filename.concat queue (state_dir st)
let job_file queue st name = Filename.concat (dir queue st) (name ^ ".job")
let wal_file queue st name = Filename.concat (dir queue st) (name ^ ".wal")
let result_file queue name = Filename.concat (dir queue Done) (name ^ ".result")
let error_file queue name = Filename.concat (dir queue Failed) (name ^ ".error")
let db_file queue = Filename.concat queue "db.txt"
let model_file queue = Filename.concat queue "model.txt"

let parse_err ~name fmt =
  Printf.ksprintf (fun m -> Error.raise_error ~context:name Error.Parse m) fmt

(* Names become file paths: keep them to one conservative charset. *)
let check_name name =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '-' || c = '_' || c = '.'
  in
  if
    name = "" || name.[0] = '.'
    || not (String.for_all ok name)
    || String.length name > 128
  then
    parse_err ~name "invalid job name %S (want [A-Za-z0-9._-]+, max 128)" name

(* --- job files ---------------------------------------------------------- *)

let job_to_string j =
  String.concat "\n"
    [
      "workload=" ^ esc j.j_workload;
      "target=" ^ esc j.j_target;
      "seed=" ^ string_of_int j.j_seed;
      "trials=" ^ string_of_int j.j_trials;
      "priority=" ^ string_of_int j.j_priority;
      "";
    ]

let parse_job ~name text =
  check_name name;
  let j =
    ref
      {
        j_name = name;
        j_workload = "";
        j_target = "gpu";
        j_seed = 42;
        j_trials = 64;
        j_priority = 1;
      }
  in
  let num ~lineno ~key v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> parse_err ~name "line %d: %s wants an integer, got %S" lineno key v
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.index_opt line '=' with
        | None -> parse_err ~name "line %d: expected key=value, got %S" lineno line
        | Some eq ->
            let key = String.trim (String.sub line 0 eq) in
            let v =
              unesc
                (String.trim
                   (String.sub line (eq + 1) (String.length line - eq - 1)))
            in
            let cur = !j in
            j :=
              (match key with
              | "workload" -> { cur with j_workload = v }
              | "target" -> { cur with j_target = v }
              | "seed" -> { cur with j_seed = num ~lineno ~key v }
              | "trials" ->
                  let t = num ~lineno ~key v in
                  if t <= 0 then
                    parse_err ~name "line %d: trials must be positive" lineno;
                  { cur with j_trials = t }
              | "priority" ->
                  { cur with j_priority = max 1 (num ~lineno ~key v) }
              | k -> parse_err ~name "line %d: unknown key %S" lineno k))
    (String.split_on_char '\n' text);
  if !j.j_workload = "" then parse_err ~name "missing required key: workload";
  !j

(* Resolve a (target, workload-tag) pair the way the tuner expects it:
   GPU targets take the tag's default shape, CPU targets swap the
   float conv/gemm shapes for their int8 counterparts. Unknown names are
   [Parse] errors so a bad job file fails, not the server. *)
let resolve ~name (j : job) =
  let target =
    match Tir_sim.Target.by_name j.j_target with
    | t -> t
    | exception _ -> parse_err ~name "unknown target %S" j.j_target
  in
  let by_tag tag =
    match W.by_tag tag with
    | w -> w
    | exception _ -> parse_err ~name "unknown workload tag %S" tag
  in
  let w =
    match target.Tir_sim.Target.kind with
    | Tir_sim.Target.Gpu -> by_tag j.j_workload
    | Tir_sim.Target.Cpu -> (
        match String.uppercase_ascii j.j_workload with
        | "C2D" -> W.c2d ~in_dtype:Tir_ir.Dtype.I8 ~acc_dtype:Tir_ir.Dtype.I32 ()
        | "GMM" ->
            W.gmm ~in_dtype:Tir_ir.Dtype.I8 ~acc_dtype:Tir_ir.Dtype.I32 ~m:512
              ~n:512 ~k:512 ()
        | _ -> by_tag j.j_workload)
  in
  (target, w)

(* --- filesystem helpers ------------------------------------------------- *)

let mkdir_p path =
  let rec mk p =
    if not (Sys.file_exists p) then begin
      mk (Filename.dirname p);
      match Unix.mkdir p 0o755 with
      | () -> ()
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      | exception Unix.Unix_error (e, _, _) ->
          Error.raise_error ~context:p Error.Io
            ("cannot create directory: " ^ Unix.error_message e)
    end
  in
  mk path

let ensure_queue queue =
  List.iter (fun st -> mkdir_p (dir queue st)) [ Pending; Running; Done; Failed ]

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error m -> Error.raise_error ~context:path Error.Io m

(* Atomic publish: write a temporary in the destination directory, then
   rename — a reader never sees a half-written file. *)
let write_file_atomic path content =
  let tmp = path ^ ".tmp" in
  (try Out_channel.with_open_bin tmp (fun oc ->
       Out_channel.output_string oc content)
   with Sys_error m -> Error.raise_error ~context:path Error.Io m);
  Sys.rename tmp path

let move src dst =
  match Sys.rename src dst with
  | () -> ()
  | exception Sys_error m -> Error.raise_error ~context:src Error.Io m

let jobs_in queue st =
  match Sys.readdir (dir queue st) with
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".job" f)
      |> List.sort String.compare
  | exception Sys_error _ -> []

let find_job queue name =
  List.find_opt
    (fun st -> Sys.file_exists (job_file queue st name))
    [ Pending; Running; Done; Failed ]

(* --- client side -------------------------------------------------------- *)

let submit ~queue (j : job) =
  check_name j.j_name;
  ensure_queue queue;
  (match find_job queue j.j_name with
  | Some st ->
      Error.raise_error ~context:j.j_name Error.Io
        (Printf.sprintf "job already exists (%s)" (state_dir st))
  | None -> ());
  let path = job_file queue Pending j.j_name in
  write_file_atomic path (job_to_string j);
  path

let list_jobs ~queue =
  List.concat_map
    (fun st -> List.map (fun n -> (n, st)) (jobs_in queue st))
    [ Pending; Running; Done; Failed ]
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Parsed key=value file (results and diagnostics share the format). *)
let read_kv path =
  read_file path |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line '=' with
           | None -> None
           | Some eq ->
               Some
                 ( String.sub line 0 eq,
                   unesc (String.sub line (eq + 1) (String.length line - eq - 1))
                 ))

let read_result ~queue ~name = read_kv (result_file queue name)
let read_error ~queue ~name = read_kv (error_file queue name)

(* --- server side -------------------------------------------------------- *)

type config = {
  queue : string;
  jobs : int option;
      (** private pool size for the whole server; [None] = the shared
          [TIR_JOBS]-sized pool *)
  drain : bool;  (** exit once pending and running are empty *)
  max_steps : int option;
      (** total session-step budget; the kill point for crash testing *)
  metrics_out : string option;
      (** dump the registry as JSON here (atomic rewrite) on every
          scheduler event, after every scheduler run, and on every idle
          poll tick — external scrapers always see live data *)
  telemetry_out : string option;
      (** Prometheus-style text exposition, same cadence and atomicity
          as [metrics_out]; the file [tensorir top] reads *)
  trace_out : string option;
      (** enable causal tracing and snapshot the Chrome trace-event JSON
          here, same cadence and atomicity as [metrics_out] *)
  poll_interval_s : float;
      (** pending/ poll cadence when not draining — also the telemetry
          snapshot cadence while idle *)
}

let default_config queue =
  {
    queue;
    jobs = None;
    drain = true;
    max_steps = None;
    metrics_out = None;
    telemetry_out = None;
    trace_out = None;
    poll_interval_s = 0.2;
  }

type outcome = {
  o_completed : int;
  o_failed : int;
  o_budget : bool;  (** stopped on [max_steps]; resumable work remains *)
}

let m_jobs_adopted = Metrics.counter "serve.jobs_adopted"
let m_jobs_started = Metrics.counter "serve.jobs_started"
let m_jobs_done = Metrics.counter "serve.jobs_done"
let m_jobs_failed = Metrics.counter "serve.jobs_failed"
let m_q_pending = Metrics.gauge "serve.queue.pending"
let m_q_running = Metrics.gauge "serve.queue.running"
let m_q_done = Metrics.gauge "serve.queue.done"
let m_q_failed = Metrics.gauge "serve.queue.failed"

let sample_queue_depth queue =
  let count st = float_of_int (List.length (jobs_in queue st)) in
  Metrics.set m_q_pending (count Pending);
  Metrics.set m_q_running (count Running);
  Metrics.set m_q_done (count Done);
  Metrics.set m_q_failed (count Failed)

(* One telemetry tick: queue-depth gauges, then every configured snapshot
   through the same atomic tmp+rename publish. Called at server start, on
   every scheduler event, after every scheduler run, and on every idle
   poll tick. *)
let dump_metrics cfg =
  if cfg.metrics_out <> None || cfg.telemetry_out <> None || cfg.trace_out <> None
  then sample_queue_depth cfg.queue;
  let snap =
    if cfg.metrics_out <> None || cfg.telemetry_out <> None then
      Some (Metrics.snapshot ())
    else None
  in
  Option.iter
    (fun path ->
      write_file_atomic path
        (Metrics.snapshot_json (Option.get snap) ^ "\n"))
    cfg.metrics_out;
  Option.iter
    (fun path ->
      write_file_atomic path (Tir_obs.Telemetry.render (Option.get snap)))
    cfg.telemetry_out;
  Option.iter
    (fun path -> write_file_atomic path (Tir_obs.Trace.export_chrome ()))
    cfg.trace_out

(* Job lifecycle instants, carrying the job (and its tenant identity) in
   the propagated context. *)
let job_instant ~name kind =
  Tir_obs.Trace.with_ctx ~job:name ~tenant:name (fun () ->
      Tir_obs.Trace.instant kind)

(* Result files are deterministic renderings of the tuning result (no
   timestamps): byte-identical results across server restarts and job
   counts are part of the test surface. *)
let render_result (j : job) (r : Tune.result) =
  let base =
    [
      ("workload", r.Tune.workload.W.name);
      ("target", r.Tune.target.Tir_sim.Target.name);
      ("seed", string_of_int j.j_seed);
      ("trials", string_of_int j.j_trials);
      ("trials_done", string_of_int r.Tune.stats.Tir_autosched.Evolutionary.trials);
      ("gflops", Printf.sprintf "%.6f" (Tune.gflops r));
    ]
  in
  let tail =
    match r.Tune.best with
    | Some b ->
        [
          ("status", "ok");
          ("latency_us", fl b.Tir_autosched.Evolutionary.latency_us);
          ("sketch", b.Tir_autosched.Evolutionary.sketch_name);
          ("trace", Tir_sched.Trace.to_string b.Tir_autosched.Evolutionary.trace);
        ]
    | None -> [ ("status", "none") ]
  in
  String.concat "\n"
    (List.map (fun (k, v) -> k ^ "=" ^ esc v) (("name", j.j_name) :: base @ tail))
  ^ "\n"

let render_error ~name (e : Error.t) =
  String.concat "\n"
    [
      "name=" ^ esc name;
      "status=failed";
      "kind=" ^ Error.kind_name e.Error.kind;
      "exit_code=" ^ string_of_int (Error.exit_code e.Error.kind);
      "message=" ^ esc e.Error.message;
      "";
    ]

(* Move a job (wherever it currently is) to failed/ with a diagnostic. *)
let fail_job ~queue ~name ~from (e : Error.t) =
  write_file_atomic (error_file queue name) (render_error ~name e);
  (match from with
  | Some st when Sys.file_exists (job_file queue st name) ->
      move (job_file queue st name) (job_file queue Failed name)
  | _ -> ());
  (match from with
  | Some Running when Sys.file_exists (wal_file queue Running name) ->
      move (wal_file queue Running name) (wal_file queue Failed name)
  | _ -> ());
  (* A job that never ran (malformed, or lost before adoption) is a
     dead-letter; a running job that errored is a plain failure. *)
  job_instant ~name
    (match from with Some Running -> "job.failed" | _ -> "job.dead_letter");
  Metrics.incr m_jobs_failed

let serve (cfg : config) : outcome =
  ensure_queue cfg.queue;
  if cfg.trace_out <> None then Tir_obs.Trace.enable ();
  let queue = cfg.queue in
  let db =
    match Database.load_result (db_file queue) with
    | Ok db -> db
    | Error e -> raise (Error.Error e)
  in
  (* The warm-start snapshot is read once at server start and baked into
     each fresh session's config (and hence its WAL meta record) as a
     [Model.Warm] spec: a session's model is pinned at creation, so
     kill+resume stays bit-identical even while completions keep
     absorbing into the live store. A missing or corrupt store degrades
     to cold starts. *)
  let warm_spec =
    Option.map (fun m -> Model.Warm (Model.save m))
      (Model.Store.load (model_file queue))
  in
  let pool =
    match cfg.jobs with
    | Some j -> Tir_parallel.Pool.create ~jobs:j ()
    | None -> Tir_parallel.Pool.global ()
  in
  let own_pool = cfg.jobs <> None in
  let sch = Scheduler.create ~pool () in
  let jobs_tbl : (string, job) Hashtbl.t = Hashtbl.create 16 in
  let completed = ref 0 and failed = ref 0 in
  let finish_ok name (r : Tune.result) =
    let j = Hashtbl.find jobs_tbl name in
    write_file_atomic (result_file queue name) (render_result j r);
    move (job_file queue Running name) (job_file queue Done name);
    if Sys.file_exists (wal_file queue Running name) then
      move (wal_file queue Running name) (wal_file queue Done name);
    (* Persist the shared database after every completion: the next
       tenant (or the next server process) replays this result for
       free. *)
    Database.save db (db_file queue);
    (* And fold the run's trained cost model into the shared store — the
       next server process warm-starts every fresh session from it
       (database replays return [model = None]: nothing new learned). *)
    Option.iter
      (fun m -> ignore (Model.Store.absorb ~path:(model_file queue) m))
      r.Tune.model;
    job_instant ~name "job.done";
    Metrics.incr m_jobs_done;
    incr completed
  in
  let finish_fail name err =
    fail_job ~queue ~name ~from:(Some Running) err;
    incr failed
  in
  let on_event ev =
    (match ev with
    | Scheduler.Step _ -> ()
    | Scheduler.Complete { tenant; result } -> finish_ok tenant result
    | Scheduler.Fail { tenant; error } -> finish_fail tenant error);
    dump_metrics cfg
  in
  (* Adopt orphans first — jobs a killed server left in running/. Their
     WALs are committed through the last generation marker; resuming
     them before scanning pending/ preserves the original submission
     order (running jobs were necessarily submitted before pending
     ones). *)
  let enqueue ~st name =
    match
      let j = parse_job ~name (read_file (job_file queue st name)) in
      let target, w = resolve ~name j in
      if Hashtbl.mem jobs_tbl name then
        Error.raise_error ~context:name Error.Io "duplicate job name";
      let session =
        if st = Running && Sys.file_exists (wal_file queue Running name) then begin
          Metrics.incr m_jobs_adopted;
          job_instant ~name "job.adopted";
          Session.resume ~workload:w ~database:db
            ~path:(wal_file queue Running name) ()
        end
        else begin
          (* Fresh job (or a job killed before its WAL was created). *)
          if st = Pending then
            move (job_file queue Pending name) (job_file queue Running name);
          Metrics.incr m_jobs_started;
          job_instant ~name "job.started";
          let scfg =
            Tune.Config.(
              default |> with_seed j.j_seed |> with_trials j.j_trials
              |> with_database db
              |>
              match warm_spec with
              | Some spec -> with_model spec
              | None -> Fun.id)
          in
          Session.create ~path:(wal_file queue Running name) scfg w target
        end
      in
      (j, session)
    with
    | j, session ->
        Hashtbl.replace jobs_tbl name j;
        Scheduler.submit ~priority:j.j_priority sch ~name session
    | exception Error.Error e ->
        (* The job may already have moved pending -> running (e.g. the
           session WAL failed to open after the move): dead-letter it
           from wherever it actually is. *)
        let from =
          match find_job queue name with
          | Some (Pending | Running) as st -> st
          | _ -> None
        in
        fail_job ~queue ~name ~from e;
        incr failed
  in
  let steps_used = ref 0 in
  let budget_left () =
    Option.map (fun m -> max 0 (m - !steps_used)) cfg.max_steps
  in
  Fun.protect
    ~finally:(fun () -> if own_pool then Tir_parallel.Pool.shutdown pool)
    (fun () ->
      (* Everything the server records carries at least tenant="server";
         tenant slices and job lifecycle sites override it with the real
         identity. *)
      Tir_obs.Trace.with_ctx ~tenant:"server" @@ fun () ->
      dump_metrics cfg;
      let rec loop first =
        if first then
          List.iter (fun name -> enqueue ~st:Running name) (jobs_in queue Running);
        List.iter (fun name -> enqueue ~st:Pending name) (jobs_in queue Pending);
        let before = Scheduler.steps_taken sch in
        let stop = Scheduler.run ?max_steps:(budget_left ()) ~on_event sch in
        steps_used := !steps_used + (Scheduler.steps_taken sch - before);
        dump_metrics cfg;
        match stop with
        | Scheduler.Budget ->
            { o_completed = !completed; o_failed = !failed; o_budget = true }
        | Scheduler.Idle ->
            if jobs_in queue Pending <> [] then loop false
            else if cfg.drain then
              { o_completed = !completed; o_failed = !failed; o_budget = false }
            else begin
              Unix.sleepf (Float.max 0.01 cfg.poll_interval_s);
              (* Periodic snapshots while idle: the poll tick is the
                 telemetry cadence, so scrapers and `tensorir top` see
                 live data even when no scheduler event fires. *)
              dump_metrics cfg;
              loop false
            end
      in
      loop true)
