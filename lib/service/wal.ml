(** Line-oriented write-ahead log file. See the interface for the
    durability contract. *)

module Error = Tir_core.Error
module Fault = Tir_core.Fault
module Metrics = Tir_obs.Metrics

let m_appends = Metrics.counter "wal.appends"
let m_rewrites = Metrics.counter "wal.rewrites"
let m_torn = Metrics.counter "wal.torn_tail"

type writer = { path : string; oc : out_channel; mutable next : int; mutable closed : bool }

let open_append ~path ~start_index =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  { path; oc; next = start_index; closed = false }

let index w = w.next

(* Fault decision before the write: an append either fails completely
   (after exhausting its retries) or lands as one flushed line — it never
   tears the file itself. Torn tails come only from real crashes between
   [output_string] and the kernel reaching disk. *)
let append w line =
  if w.closed then
    Error.raise_error ~context:w.path Error.Io "append to closed WAL";
  let key = Printf.sprintf "wal:%d" w.next in
  (if Fault.enabled Fault.Db_write then
     try
       Tir_parallel.Retry.with_retries ~site:"db" ~key (fun ~attempt ->
           Fault.maybe_fail Fault.Db_write
             ~key:(Printf.sprintf "%s@%d" key attempt))
     with Tir_parallel.Retry.Exhausted { attempts; _ } ->
       Error.raise_error ~context:w.path Error.Fault
         (Printf.sprintf "WAL append %s failed after %d attempts" key attempts));
  output_string w.oc line;
  output_char w.oc '\n';
  flush w.oc;
  w.next <- w.next + 1;
  Metrics.incr m_appends

let close w =
  if not w.closed then begin
    w.closed <- true;
    close_out w.oc
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read ~path =
  if not (Sys.file_exists path) then ([], None)
  else begin
    let content = try read_file path with Sys_error msg ->
      Error.raise_error ~context:path Error.Io msg
    in
    let len = String.length content in
    if len = 0 then ([], None)
    else begin
      let complete = content.[len - 1] = '\n' in
      let lines = String.split_on_char '\n' content in
      (* split_on_char leaves a trailing "" for a terminated file, or the
         torn fragment otherwise. *)
      let rec split_tail acc = function
        | [] -> (List.rev acc, None)
        | [ last ] ->
            if complete then ((* last = "" *) List.rev acc, None)
            else begin
              Metrics.incr m_torn;
              (List.rev acc, Some last)
            end
        | l :: rest -> split_tail (l :: acc) rest
      in
      split_tail [] lines
    end
  end

let rewrite ~path records =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     List.iter
       (fun line ->
         output_string oc line;
         output_char oc '\n')
       records;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  Metrics.incr m_rewrites
