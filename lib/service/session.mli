(** Crash-safe resumable tuning sessions (the service layer).

    A session wraps one tuning run ([Tir_autosched.Tune.run]) with a
    write-ahead checkpoint log: every generation's dedup keys, every
    measured candidate, and a per-generation commit marker are appended
    to a WAL file (percent-escaped line records, flushed per append — the
    same serialization discipline as the trace/database/journal formats).
    A killed process {!resume}s from the last committed generation and,
    for a fixed seed, converges to the {e bit-identical} best schedule
    trace an uninterrupted run finds: generation randomness derives from
    [(seed, gen)] alone, measurements are pure functions of the program,
    and fault-injection decisions are keyed hashes — nothing depends on
    where the crash fell.

    Record grammar (fields percent-escaped, [|]-separated):
    {v
    meta|tag|workload|target|seed|trials|use_cost_model|evolve|model
    seen|gen|key...              (fresh dedup keys, slot order)
    measure|gen|sketch|base|latency|trace
    gen|gen|<cumulative stats>|best_us          (the commit marker)
    done|<cumulative stats>|best_us|has|sketch|base|latency|trace
    v}
    Records after the last [gen] marker belong to an uncommitted
    generation: {!resume} discards them (the generation re-runs
    bit-identically) and compacts the log atomically (write temporary,
    rename) so stale records never accumulate. A torn trailing line —
    crash mid-append, no final newline — is salvaged if it parses and
    silently dropped otherwise; newline-terminated garbage raises
    [Corrupt]. Floats are serialized in hex ([%h]) so every latency
    round-trips exactly.

    The [model] meta field is the escaped [Tir_autosched.Model.spec_to_string]
    of the session's cost-model spec — a [Warm] spec embeds the full
    warm-start snapshot, so resume never depends on a live model store
    file that may have moved on. Logs written before the field existed
    (8-field meta) read back as the historical default, a fresh GBDT.

    Metrics: [session.resumes], [session.generations],
    [session.discarded], [session.compactions]; spans [session.run],
    [session.resume]. *)

module W = Tir_workloads.Workloads
module Tune = Tir_autosched.Tune

type t

(** Raised by {!run} when [halt_after] (or [TIR_HALT_AFTER_GEN])
    generations completed this run — the WAL is flushed and committed
    through generation [gen], and the process can exit; a later
    {!resume} continues the search. *)
exception Halted of { path : string; gen : int }

(** Start a fresh session logging to [path]. Fails with an [Io] error if
    a non-empty file is already there (resume it instead), unless
    [force] truncates it. [cfg.sketches] must be [None] — sketch
    overrides are not serializable. *)
val create : ?force:bool -> path:string -> Tune.Config.t -> W.t -> Tir_sim.Target.t -> t

(** Re-open a session from its WAL. The workload, target, seed, trial
    budget and search flags come from the [meta] record; [workload]
    must be passed explicitly for non-default shapes (the default
    reconstruction goes through [W.by_tag] and is verified against the
    stored name). [jobs]/[journal]/[database]/[retry] re-attach the
    non-serializable configuration. Discards uncommitted records and
    compacts the log atomically before reopening it for append.

    Raises [Tir_core.Error.Error] — [Corrupt] for a malformed or
    inconsistent log, [Io] for filesystem failures. *)
val resume :
  ?workload:W.t ->
  ?jobs:int ->
  ?journal:Tir_obs.Journal.sink ->
  ?database:Tir_autosched.Database.t ->
  ?retry:Tir_parallel.Retry.policy ->
  path:string ->
  unit ->
  t

(** Run (or continue) the session's tuning search to completion, append
    the [done] record, and return the result. On an already-completed
    session the stored result is reconstructed from the log without any
    search. [halt_after] (default [TIR_HALT_AFTER_GEN] from the
    environment) stops after that many generations committed {e in this
    run} by raising {!Halted}. *)
val run : ?halt_after:int -> t -> Tune.result

(** A session being driven one generation at a time — the scheduler's
    unit of preemption. *)
type stepper

type step_result = [ `Stepped of int | `Done of Tune.result ]

(** Attach a stepper to the session: builds the WAL checkpoint hooks and
    the underlying [Tune.driver]. [pool] runs the search's fan-outs on an
    externally owned (typically shared) pool; without it, [Config.jobs]
    applies as in [Tune.run]. On an already-completed session every
    {!step} returns the reconstructed stored result. *)
val start : ?pool:Tir_parallel.Pool.t -> t -> stepper

(** Advance one generation. [`Stepped gen]: generation [gen] is committed
    to the WAL (durable — the process can be killed and {!resume}d from
    here). [`Done r]: the search finished; the [done] record is appended
    and the writer closed. Idempotent past [`Done]. *)
val step : stepper -> step_result

(** Best latency seen so far (µs), live after every step; NaN until
    something has been measured. The scheduler reads this for the
    per-tenant [tenant.<name>.best_us] gauge and stall detection. *)
val best_us : stepper -> float

(** Cumulative model rank correlation ([Engine.rank_corr]) after the last
    step; 0.0 until two candidates measured this run. The scheduler reads
    this for the per-tenant [tenant.<name>.rank_corr] gauge. *)
val rank_corr : stepper -> float

(** Stop driving a stepper without completing it: closes the WAL writer
    (the log stays committed through the last [gen] marker) and joins any
    driver-owned private pool. Used on exception paths; {!resume} picks
    the session back up. *)
val abort : stepper -> unit

(** Session inspection without running anything. *)
type status = {
  workload : string;
  target : string;
  seed : int;
  trials_target : int;
  trials_done : int;
  generations : int;  (** committed generations *)
  completed : bool;
  best_us : float option;
}

val status : path:string -> status

(** Parse the log and atomically rewrite it with only committed records
    (what {!resume} does internally). *)
val compact : path:string -> unit

val path : t -> string

(** Close the WAL writer without completing the session. *)
val close : t -> unit
