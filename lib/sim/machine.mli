(** Analytic machine model: deterministic latency for a scheduled program —
    the stand-in for the paper's hardware measurement step.

    Work per pipe (scalar, special-function, tensor) and bytes per storage
    scope are aggregated by walking the program (with coalescing and
    bank-conflict penalties derived from the access pattern against the
    innermost lane variable), then a roofline with occupancy and core-count
    scaling prices each root-level nest. Pure function of the program:
    search results are reproducible. *)

open Tir_ir

(** Raised when the program tensorizes with an intrinsic the target
    lacks. *)
exception Unsupported of string

type tally = {
  mutable scalar_ops : float;
  mutable special_ops : float;
  mutable tensor_flops : float;
  mutable intrin_calls : float;
  mutable blocks : int;  (** block nodes visited during the walk *)
  mutable bytes_global : float;
  mutable bytes_shared : float;
  mutable bytes_local : float;
  mutable loop_overhead : float;
  mutable blockidx : int;  (** max per-path product of blockIdx extents *)
  mutable threadidx : int;  (** max per-path product of threadIdx extents *)
  mutable parallel : int;  (** max per-path product of parallel extents *)
  mutable vectorized_frac : float;
  mutable uses_tensor_core : bool;
  mutable pipelined : bool;  (** software-pipelining annotation present *)
}

val new_tally : unit -> tally

(** Work/traffic/parallelism of one root-level nest. *)
val tally_of_nest : Target.t -> Stmt.t -> tally

(** Latency of one nest, in microseconds. *)
val nest_latency_us : Target.t -> tally -> float

(** Latency of a whole function in microseconds (root nests execute
    sequentially, each paying the launch overhead). Each call feeds the
    simulated-program counters in the metrics registry ([sim.measurements],
    [sim.blocks_visited], [sim.tensorized_ops] vs [sim.scalar_ops],
    [sim.bytes.{global,shared,local}], ...) — integer-valued, so totals are
    bit-identical at any job count for a deterministic search.

    [fault_key] opts the call into the deterministic fault-injection
    harness ([Tir_core.Fault], site [Measure]): when the keyed decision
    for the given key fires, the call raises [Tir_core.Fault.Injected]
    before touching any counter. Retrying callers vary the key per
    attempt. *)
val measure_us : ?fault_key:string -> Target.t -> Primfunc.t -> float

(** Whole-function tally for feature extraction: work sums across nests,
    parallelism takes the maximum. Per-nest tallies are served from a
    per-domain cache keyed by the nest statement's physical identity —
    schedule transforms path-copy, so candidate programs share unchanged
    stages with the rest of the population and only re-walk the nests
    their decisions touched. ([measure_us] does not use the cache: it
    feeds the [sim.*] counters per nest walked.) *)
val tally_func : Target.t -> Primfunc.t -> tally

(** Cumulative (process-wide) hits/misses of the per-nest tally cache. *)
val nest_cache_stats : unit -> int * int

(** Toggle the per-nest tally cache (also [TIR_NEST_CACHE=0] in the
    environment). Results are bit-identical either way; the switch exists
    for the bench's pre-refactor arm and for debugging. *)
val set_nest_cache_enabled : bool -> unit

(** Drop the calling domain's nest-tally cache and zero its counters. *)
val nest_cache_clear : unit -> unit
