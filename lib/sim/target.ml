(** Hardware target descriptions.

    Stand-ins for the paper's two evaluation platforms (§5): an NVIDIA
    RTX-3080-class GPU with Tensor Cores and an AWS Graviton2-class ARM CPU
    with the [sdot] instruction. The parameters are calibrated to the public
    datasheets' *ratios* (tensor : vector : scalar throughput, compute :
    bandwidth), which is what determines the comparative shapes the paper
    reports; absolute numbers are not the reproduction target. *)

type kind = Gpu | Cpu

type t = {
  name : string;
  kind : kind;
  num_cores : int;  (** SMs (GPU) or cores (CPU) *)
  clock_ghz : float;
  scalar_rate : float;  (** scalar ALU ops / cycle / core *)
  vector_width : int;  (** SIMD lanes usable by [vectorize] *)
  special_rate : float;  (** transcendental ops / cycle / core *)
  tensor_rate : float;  (** tensor-intrinsic FLOPs / cycle / core *)
  global_bw : float;  (** global-memory bytes / cycle, device-wide *)
  shared_bw : float;  (** shared/L1 bytes / cycle / core *)
  local_bw : float;  (** register-file bytes / cycle / core *)
  full_occupancy_threads : int;  (** threads per core for full throughput *)
  max_threads_per_block : int;
  warp_size : int;
  kernel_launch_us : float;  (** per root-level nest overhead *)
  supported_intrinsics : string list;
      (** tensor intrinsics this target executes; others are rejected *)
}

(* RTX 3080-class: 68 SMs @ 1.44 GHz. fp16 tensor-core throughput is ~8x the
   fp16 SIMT throughput, which in turn is 2x fp32 — these ratios drive
   Figures 10-12. Global bandwidth 760 GB/s ~= 528 B/cycle. *)
let gpu_tensorcore =
  {
    name = "gpu-tensorcore";
    kind = Gpu;
    num_cores = 68;
    clock_ghz = 1.44;
    scalar_rate = 256.0;
    vector_width = 4;
    special_rate = 16.0;
    tensor_rate = 2048.0;
    global_bw = 528.0;
    shared_bw = 128.0;
    local_bw = 1024.0;
    full_occupancy_threads = 256;
    max_threads_per_block = 1024;
    warp_size = 32;
    kernel_launch_us = 3.0;
    supported_intrinsics =
      [ "wmma.mma_16x16x16"; "wmma.load_a"; "wmma.load_b"; "wmma.store"; "accel.dot_4x4x4" ];
  }

(* Graviton2-class: 64 N1 cores @ 2.5 GHz; NEON 16 int8 lanes, sdot gives a
   4x MAC throughput over scalar int8 multiply-accumulate chains. *)
let arm_sdot =
  {
    name = "arm-sdot";
    kind = Cpu;
    num_cores = 16;
    clock_ghz = 2.5;
    scalar_rate = 4.0;
    vector_width = 16;
    special_rate = 1.0;
    tensor_rate = 256.0;
    global_bw = 64.0;
    shared_bw = 64.0;
    local_bw = 256.0;
    full_occupancy_threads = 1;
    max_threads_per_block = 1;
    warp_size = 1;
    kernel_launch_us = 0.2;
    supported_intrinsics = [ "arm.sdot_8x12x4"; "arm.sdot_4x4x4" ];
  }

let supports t intrin = List.mem intrin t.supported_intrinsics

(** Stable identity string covering every parameter that affects the
    machine model's answer — the cache key component for measurement
    memoization. Two targets with equal fingerprints simulate identically,
    even user-constructed ones sharing a [name]. *)
let fingerprint t =
  Printf.sprintf "%s/%s/c%d@%.3f/s%.1f/v%d/sp%.1f/t%.1f/g%.1f/sh%.1f/l%.1f/o%d/b%d/w%d/k%.2f/%s"
    t.name
    (match t.kind with Gpu -> "gpu" | Cpu -> "cpu")
    t.num_cores t.clock_ghz t.scalar_rate t.vector_width t.special_rate
    t.tensor_rate t.global_bw t.shared_bw t.local_bw t.full_occupancy_threads
    t.max_threads_per_block t.warp_size t.kernel_launch_us
    (String.concat "," t.supported_intrinsics)

let by_name = function
  | "gpu-tensorcore" | "gpu" -> gpu_tensorcore
  | "arm-sdot" | "arm" | "cpu" -> arm_sdot
  | s -> invalid_arg ("unknown target " ^ s)
