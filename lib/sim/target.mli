(** Hardware target descriptions: the simulated stand-ins for the paper's
    two evaluation platforms (RTX-3080-class GPU with Tensor Cores;
    Graviton2-class ARM CPU with [sdot]). Parameters are calibrated to
    datasheet *ratios*, which determine the comparative shapes reported. *)

type kind = Gpu | Cpu

type t = {
  name : string;
  kind : kind;
  num_cores : int;  (** SMs (GPU) or cores (CPU) *)
  clock_ghz : float;
  scalar_rate : float;  (** scalar ALU ops / cycle / core *)
  vector_width : int;  (** SIMD lanes usable by [vectorize] *)
  special_rate : float;  (** transcendental ops / cycle / core *)
  tensor_rate : float;  (** tensor-intrinsic FLOPs / cycle / core *)
  global_bw : float;  (** global-memory bytes / cycle, device-wide *)
  shared_bw : float;  (** shared/L1 bytes / cycle / core *)
  local_bw : float;  (** register-file bytes / cycle / core *)
  full_occupancy_threads : int;  (** threads per core for full throughput *)
  max_threads_per_block : int;
  warp_size : int;
  kernel_launch_us : float;  (** per root-level nest overhead *)
  supported_intrinsics : string list;
}

val gpu_tensorcore : t
val arm_sdot : t
val supports : t -> string -> bool

(** Stable identity string covering every parameter the machine model reads
    (cache key component for measurement memoization). *)
val fingerprint : t -> string

(** Lookup by name: "gpu"/"gpu-tensorcore" or "arm"/"cpu"/"arm-sdot". *)
val by_name : string -> t
