(** Analytic machine model: deterministic latency for a scheduled PrimFunc.

    Plays the role of the paper's hardware measurement step. The model walks
    the program, aggregating issued work per pipe (scalar ALU, special
    function, tensor unit) and bytes moved per storage scope (with
    coalescing/bank-conflict penalties derived from the access pattern
    against the innermost lane variable), then applies a roofline with
    occupancy and core-count scaling per root-level nest. Everything is a
    pure function of the program, so search results are reproducible. *)

open Tir_ir
module Simplify = Tir_arith.Simplify

exception Unsupported of string

type tally = {
  mutable scalar_ops : float;
  mutable special_ops : float;
  mutable tensor_flops : float;
  mutable intrin_calls : float;
  mutable blocks : int;  (** block nodes visited during the walk *)
  mutable bytes_global : float;
  mutable bytes_shared : float;
  mutable bytes_local : float;
  mutable loop_overhead : float;
  mutable blockidx : int;
  mutable threadidx : int;
  mutable parallel : int;
  mutable vectorized_frac : float;  (** fraction of scalar work vectorized *)
  mutable uses_tensor_core : bool;
  mutable pipelined : bool;  (** software pipelining annotation present *)
}

let new_tally () =
  {
    scalar_ops = 0.0;
    special_ops = 0.0;
    tensor_flops = 0.0;
    intrin_calls = 0.0;
    blocks = 0;
    bytes_global = 0.0;
    bytes_shared = 0.0;
    bytes_local = 0.0;
    loop_overhead = 0.0;
    blockidx = 1;
    threadidx = 1;
    parallel = 1;
    vectorized_frac = 0.0;
    uses_tensor_core = false;
    pipelined = false;
  }

type walk_ctx = {
  trip : float;
  flop_scale : float;  (** < 1 under vectorized loops *)
  lane : Var.t option;  (** coalescing variable *)
  lane_width : int;
  subst : Expr.t Var.Map.t;  (** block iterator values *)
  ranges : Bound.interval Var.Map.t;  (** loop variable ranges in scope *)
  block_par : int;  (** product of blockIdx extents on this path *)
  thread_par : int;  (** product of threadIdx extents on this path *)
  cpu_par : int;  (** product of parallel-loop extents on this path *)
  reduce_scale : float;  (** fraction of instances executing init *)
}

(* Parallelism is a per-path property: sibling nests (separate stages of
   one kernel) each have their own bindings; record the maximum. *)
let note_parallelism (t : tally) ctx =
  t.blockidx <- max t.blockidx ctx.block_par;
  t.threadidx <- max t.threadidx ctx.thread_par;
  t.parallel <- max t.parallel ctx.cpu_par

let scope_add (t : tally) scope bytes =
  if String.equal scope "global" then t.bytes_global <- t.bytes_global +. bytes
  else if String.equal scope "shared" then t.bytes_shared <- t.bytes_shared +. bytes
  else t.bytes_local <- t.bytes_local +. bytes

(* Flatten a multi-dim index and extract the per-lane address stride (in
   elements). Linear lane usage yields the exact coefficient; div/mod usage
   (fused-loop decode) is estimated as the average step across the lane
   range, with the other loop variables relaxed — so a row index like
   [f / 1024] under a 32-wide lane correctly reads as near-broadcast. *)
(* Whether [e] can mention the lane variable once block iterators are
   substituted — a variable reaches the lane only directly or through a
   substitution image, so scanning free variables is exact. *)
let touches_lane ctx lane e =
  Var.Set.exists
    (fun v ->
      Var.equal v lane
      ||
      match Var.Map.find_opt v ctx.subst with
      | Some img -> Expr.uses_var lane img
      | None -> false)
    (Expr.free_vars e)

let lane_coeff ctx (b : Buffer.t) idx =
  match ctx.lane with
  | None -> None
  | Some lane ->
      if not (List.exists (touches_lane ctx lane) idx) then
        (* Lane-invariant address: the flattened linear form would carry
           no lane term, so the coefficient is exactly zero. Skipping
           the flatten/substitute/simplify pipeline here is the single
           biggest saving in feature extraction. *)
        Some 0.0
      else
      let strides =
        let rec go = function
          | [] -> []
          | [ _ ] -> [ 1 ]
          | _ :: rest ->
              let tail = go rest in
              (List.hd tail * List.hd rest) :: tail
        in
        go b.shape
      in
      let flat =
        (* Only lane-touching dimensions can contribute lane terms to the
           linear form, and the extraction below drops every other term —
           so flatten just those, which keeps the simplifier input small
           on high-rank accesses. *)
        List.fold_left2
          (fun acc i s ->
            if touches_lane ctx lane i then Expr.add acc (Expr.mul i (Expr.Int s))
            else acc)
          (Expr.Int 0) idx strides
      in
      let flat = Expr.subst_map ctx.subst flat in
      let l = Simplify.to_linear (Simplify.simplify Simplify.empty_ctx flat) in
      let exact = ref 0 and fuzzy = ref [] in
      List.iter
        (fun (atom, c) ->
          match atom with
          | Expr.Var v when Var.equal v lane -> exact := !exact + c
          | e when Expr.uses_var lane e -> fuzzy := (e, c) :: !fuzzy
          | _ -> ())
        l.Simplify.terms;
      let width = max 2 ctx.lane_width in
      let estimate (e, c) =
        let at lv =
          Expr.subst (fun v -> if Var.equal v lane then Some (Expr.Int lv) else None) e
        in
        let diff =
          Simplify.simplify Simplify.empty_ctx (Expr.sub (at (width - 1)) (at 0))
        in
        match Bound.of_expr_map ctx.ranges diff with
        | Some { Bound.lo; hi } ->
            float_of_int (c * (lo + hi)) /. 2.0 /. float_of_int (width - 1)
        | None -> float_of_int (c * 64)
      in
      let total =
        List.fold_left (fun acc t -> acc +. estimate t) (float_of_int !exact) !fuzzy
      in
      Some total

(* Bytes multiplier for one access under the current lane. *)
let access_factor ctx (b : Buffer.t) idx =
  let eb = float_of_int (Dtype.bytes b.dtype) in
  match lane_coeff ctx b idx with
  | None -> eb
  | Some c when Float.abs c < 0.25 ->
      eb /. float_of_int (max 1 ctx.lane_width) (* broadcast: one transaction *)
  | Some c ->
      let stride_bytes = Float.abs c *. eb in
      if stride_bytes <= 16.0 then eb else eb *. Float.min 8.0 (stride_bytes /. 16.0)

let rec count_expr (t : tally) ctx (e : Expr.t) =
  match e with
  | Expr.Int _ | Expr.Float _ | Expr.Bool _ | Expr.Var _ -> ()
  | Expr.Load (b, idx) ->
      List.iter (count_expr t ctx) idx;
      scope_add t b.Buffer.scope (ctx.trip *. access_factor ctx b idx)
  | Expr.Call (name, _, args) ->
      List.iter (count_expr t ctx) args;
      if not (String.length name > 4 && String.equal (String.sub name 0 4) "tir.") then
        t.special_ops <- t.special_ops +. (ctx.trip *. ctx.flop_scale)
  | Expr.Ptr (_, idx) -> List.iter (count_expr t ctx) idx
  | Expr.Bin ((Expr.Div | Expr.Mod), a, b) ->
      count_expr t ctx a;
      count_expr t ctx b;
      t.scalar_ops <- t.scalar_ops +. (4.0 *. ctx.trip *. ctx.flop_scale)
  | Expr.Bin (_, a, b) | Expr.Cmp (_, a, b) | Expr.And (a, b) | Expr.Or (a, b) ->
      count_expr t ctx a;
      count_expr t ctx b;
      t.scalar_ops <- t.scalar_ops +. (ctx.trip *. ctx.flop_scale)
  | Expr.Not a | Expr.Cast (_, a) -> count_expr t ctx a
  | Expr.Select (c, a, b) ->
      count_expr t ctx c;
      count_expr t ctx a;
      count_expr t ctx b;
      t.scalar_ops <- t.scalar_ops +. (ctx.trip *. ctx.flop_scale)

let intrinsic_flops name args =
  match (name, args) with
  | ("tir.mma_sync" | "tir.sdot"), Expr.Int m :: Expr.Int n :: Expr.Int k :: _ ->
      `Mma (m, n, k)
  | ("tir.load_matrix_sync" | "tir.store_matrix_sync" | "tir.async_copy"),
    Expr.Int m :: Expr.Int n :: _ ->
      `Copy (m, n)
  | _ -> `Other

let count_intrinsic (t : tally) ctx name args =
  match intrinsic_flops name args with
  | `Mma (m, n, k) ->
      t.tensor_flops <- t.tensor_flops +. (2.0 *. float_of_int (m * n * k) *. ctx.trip);
      t.intrin_calls <- t.intrin_calls +. ctx.trip;
      t.uses_tensor_core <- true;
      (* Operand traffic from the pointed-to scopes, fully coalesced. *)
      List.iter
        (fun (a : Expr.t) ->
          match a with
          | Expr.Ptr (b, _) ->
              let tile =
                match b.Buffer.shape with
                | _ -> float_of_int ((m * k) + (k * n) + (m * n)) /. 3.0
              in
              scope_add t b.Buffer.scope
                (ctx.trip *. tile *. float_of_int (Dtype.bytes b.Buffer.dtype))
          | _ -> ())
        args
  | `Copy (m, n) ->
      t.intrin_calls <- t.intrin_calls +. ctx.trip;
      List.iter
        (fun (a : Expr.t) ->
          match a with
          | Expr.Ptr (b, _) ->
              scope_add t b.Buffer.scope
                (ctx.trip *. float_of_int (m * n * Dtype.bytes b.Buffer.dtype))
          | _ -> ())
        args
  | `Other -> ()

let rec walk target (t : tally) ctx (s : Stmt.t) =
  match s with
  | Stmt.For r -> (
      if List.mem_assoc "software_pipeline" r.annotations then t.pipelined <- true;
      let extent = float_of_int r.extent in
      let ctx =
        { ctx with ranges = Var.Map.add r.loop_var (Bound.of_extent r.extent) ctx.ranges }
      in
      match r.kind with
      | Stmt.Serial ->
          t.loop_overhead <- t.loop_overhead +. (ctx.trip *. extent *. 0.5);
          walk target t { ctx with trip = ctx.trip *. extent } r.body
      | Stmt.Unrolled -> walk target t { ctx with trip = ctx.trip *. extent } r.body
      | Stmt.Vectorized ->
          let lanes = min r.extent target.Target.vector_width in
          t.vectorized_frac <- 1.0;
          walk target t
            {
              ctx with
              trip = ctx.trip *. extent;
              flop_scale = ctx.flop_scale /. float_of_int lanes;
              lane = Some r.loop_var;
              lane_width = r.extent;
            }
            r.body
      | Stmt.Parallel ->
          let ctx = { ctx with cpu_par = ctx.cpu_par * r.extent } in
          note_parallelism t ctx;
          walk target t { ctx with trip = ctx.trip *. extent } r.body
      | Stmt.Thread_binding axis ->
          let ctx =
            if String.length axis >= 8 && String.equal (String.sub axis 0 8) "blockIdx"
            then { ctx with block_par = ctx.block_par * r.extent }
            else { ctx with thread_par = ctx.thread_par * r.extent }
          in
          note_parallelism t ctx;
          let ctx =
            if String.equal axis "threadIdx.x" then
              { ctx with lane = Some r.loop_var; lane_width = r.extent }
            else ctx
          in
          walk target t { ctx with trip = ctx.trip *. extent } r.body)
  | Stmt.Seq ss -> List.iter (walk target t ctx) ss
  | Stmt.If (c, th, el) ->
      count_expr t ctx c;
      walk target t ctx th;
      Option.iter (walk target t ctx) el
  | Stmt.Store (b, idx, v) ->
      List.iter (count_expr t ctx) idx;
      count_expr t ctx v;
      scope_add t b.Buffer.scope (ctx.trip *. access_factor ctx b idx)
  | Stmt.Eval (Expr.Call (name, _, args))
    when String.length name > 4 && String.equal (String.sub name 0 4) "tir." ->
      count_intrinsic t ctx name args
  | Stmt.Eval e -> count_expr t ctx e
  | Stmt.Block br ->
      t.blocks <- t.blocks + 1;
      let b = br.Stmt.block in
      (match List.assoc_opt "tensorized" b.annotations with
      | Some intrin when not (Target.supports target intrin) ->
          raise (Unsupported intrin)
      | _ -> ());
      let subst =
        List.fold_left2
          (fun m (iv : Stmt.iter_var) value ->
            Var.Map.add iv.var (Expr.subst_map ctx.subst value) m)
          ctx.subst b.iter_vars br.Stmt.iter_values
      in
      let ctx = { ctx with subst } in
      let reduce_product =
        List.fold_left
          (fun acc (iv : Stmt.iter_var) ->
            if iv.itype = Stmt.Reduce then acc * iv.extent else acc)
          1 b.iter_vars
      in
      (match b.init with
      | Some init ->
          walk target t { ctx with trip = ctx.trip /. float_of_int reduce_product } init
      | None -> ());
      walk target t ctx b.body

let tally_of_nest target (s : Stmt.t) =
  let t = new_tally () in
  walk target t
    {
      trip = 1.0;
      flop_scale = 1.0;
      lane = None;
      lane_width = 1;
      subst = Var.Map.empty;
      ranges = Var.Map.empty;
      block_par = 1;
      thread_par = 1;
      cpu_par = 1;
      reduce_scale = 1.0;
    }
    s;
  t

(* Per-nest tally cache, keyed by the nest's structural fingerprint.
   Candidate schedules in one search population differ in a few decisions
   but share whole stages structurally — the global<->shared copy nests a
   cache_read inserts are rebuilt with fresh [Var]s on every apply, yet
   spell out the same program whenever the relevant tile sizes agree. The
   tally is a pure function of program structure (names, extents, shapes
   — never ids), so a fingerprint hit can reuse the stored tally, and the
   fingerprint walk is a single cheap traversal against the tally walk's
   per-access stride analysis (simplifier + bound queries per load/store).
   Per-domain (no locks); entries are treated as immutable after
   insertion. [measure_us] deliberately does NOT use this cache: it feeds
   the [sim.*] registry counters per nest walked, and skipping walks would
   make those totals depend on cache state. *)
module FpTbl = Hashtbl.Make (struct
  type t = int64

  let equal = Int64.equal
  let hash k = Int64.to_int k land max_int
end)

let nest_cache_cap = 1 lsl 12

let nest_cache : (Target.t * tally) FpTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> FpTbl.create 256)

let nest_cache_hits = Atomic.make 0
let nest_cache_misses = Atomic.make 0

(** Cumulative (process-wide) per-nest tally cache hits/misses. *)
let nest_cache_stats () = (Atomic.get nest_cache_hits, Atomic.get nest_cache_misses)

(* Kill switch for A/B comparison (bench) and debugging. *)
let nest_cache_enabled =
  ref
    (match Sys.getenv_opt "TIR_NEST_CACHE" with
    | Some ("0" | "off") -> false
    | None | Some _ -> true)

let set_nest_cache_enabled b = nest_cache_enabled := b

(** Drop the calling domain's nest-tally cache and zero the counters
    (tests, bench A/B sections). *)
let nest_cache_clear () =
  FpTbl.reset (Domain.DLS.get nest_cache);
  Atomic.set nest_cache_hits 0;
  Atomic.set nest_cache_misses 0

let tally_of_nest_cached target (s : Stmt.t) =
  if not !nest_cache_enabled then tally_of_nest target s
  else
    let tbl = Domain.DLS.get nest_cache in
    let key = Fingerprint.stmt s in
    match FpTbl.find_opt tbl key with
    | Some (tt, t) when tt == target ->
        Atomic.incr nest_cache_hits;
        t
    | _ ->
        Atomic.incr nest_cache_misses;
        let t = tally_of_nest target s in
        if FpTbl.length tbl >= nest_cache_cap then FpTbl.reset tbl;
        FpTbl.replace tbl key (target, t);
        t

let clampf lo hi x = Float.max lo (Float.min hi x)

(* Latency of one root-level nest, in microseconds. *)
let nest_latency_us target (t : tally) =
  let fcores = float_of_int target.Target.num_cores in
  let cores_used, occ =
    match target.Target.kind with
    | Target.Gpu ->
        let blocks = float_of_int t.blockidx in
        let waves = Float.max 1.0 (Float.ceil (blocks /. fcores)) in
        let eff = if blocks <= 0.0 then 1.0 else blocks /. waves in
        let occ =
          clampf (1.0 /. 32.0) 1.0
            (float_of_int t.threadidx /. float_of_int target.Target.full_occupancy_threads)
        in
        (Float.max 1.0 eff, occ)
    | Target.Cpu ->
        let par = float_of_int t.parallel in
        let waves = Float.max 1.0 (Float.ceil (par /. fcores)) in
        (Float.max 1.0 (par /. waves), 1.0)
  in
  let compute_cycles =
    (t.scalar_ops +. (0.5 *. t.loop_overhead))
    /. (target.Target.scalar_rate *. cores_used *. occ)
  in
  let special_cycles = t.special_ops /. (target.Target.special_rate *. cores_used *. occ) in
  let tensor_cycles = t.tensor_flops /. (target.Target.tensor_rate *. cores_used *. occ) in
  let mem_global = t.bytes_global /. target.Target.global_bw in
  let mem_shared = t.bytes_shared /. (target.Target.shared_bw *. cores_used) in
  let mem_local = t.bytes_local /. (target.Target.local_bw *. cores_used) in
  let bound =
    List.fold_left Float.max 0.0
      [ compute_cycles +. special_cycles; tensor_cycles; mem_global; mem_shared; mem_local ]
  in
  (* Software pipelining (cp.async double buffering, as vendor libraries
     emit) overlaps the non-dominant pipes almost completely. *)
  let overlap = if t.pipelined then 0.01 else 0.05 in
  let bound = if t.pipelined then bound *. 0.92 else bound in
  let cycles =
    bound
    +. (overlap
       *. (compute_cycles +. special_cycles +. tensor_cycles +. mem_global +. mem_shared))
  in
  (cycles /. (target.Target.clock_ghz *. 1000.0)) +. target.Target.kernel_launch_us

(* Simulated-program counters: what the machine model "executed" across
   every measured program. Integer-valued (bytes rounded per measurement),
   so the totals are order-independent and bit-identical at any job count
   even though measurements run on pool domains — and they are only bumped
   inside [measure_us], which the tuner reaches through the measurement
   memo, so a deterministic search executes the same set of simulations
   regardless of parallelism. [sim.bytes.*] per scope is the data the
   paper's "data movement dominates" claim is made from. *)
let m_measurements = Tir_obs.Metrics.counter "sim.measurements"
let m_nests = Tir_obs.Metrics.counter "sim.nests"
let m_blocks = Tir_obs.Metrics.counter "sim.blocks_visited"
let m_tensor_ops = Tir_obs.Metrics.counter "sim.tensorized_ops"
let m_tensor_flops = Tir_obs.Metrics.counter "sim.tensor_flops"
let m_scalar_ops = Tir_obs.Metrics.counter "sim.scalar_ops"
let m_bytes_global = Tir_obs.Metrics.counter "sim.bytes.global"
let m_bytes_shared = Tir_obs.Metrics.counter "sim.bytes.shared"
let m_bytes_local = Tir_obs.Metrics.counter "sim.bytes.local"

(* Per-nest data-movement distributions (the totals above hide shape:
   one huge kernel and a thousand small ones sum the same). The default
   power-of-two buckets span bytes-per-nest from 1 B to ~0.5 TB. *)
let h_bytes_global = Tir_obs.Metrics.histogram "sim.bytes_per_nest.global"
let h_bytes_shared = Tir_obs.Metrics.histogram "sim.bytes_per_nest.shared"
let h_bytes_local = Tir_obs.Metrics.histogram "sim.bytes_per_nest.local"

let round_int v = int_of_float (Float.round v)

let record_tally (t : tally) =
  Tir_obs.Metrics.add m_blocks t.blocks;
  Tir_obs.Metrics.add m_tensor_ops (round_int t.intrin_calls);
  Tir_obs.Metrics.add m_tensor_flops (round_int t.tensor_flops);
  Tir_obs.Metrics.add m_scalar_ops (round_int t.scalar_ops);
  Tir_obs.Metrics.add m_bytes_global (round_int t.bytes_global);
  Tir_obs.Metrics.add m_bytes_shared (round_int t.bytes_shared);
  Tir_obs.Metrics.add m_bytes_local (round_int t.bytes_local);
  Tir_obs.Metrics.observe h_bytes_global t.bytes_global;
  Tir_obs.Metrics.observe h_bytes_shared t.bytes_shared;
  Tir_obs.Metrics.observe h_bytes_local t.bytes_local

(** Measured latency of a whole function, in microseconds. Root-level nests
    execute sequentially (separate kernels on GPU). Raises [Unsupported] if
    the program tensorizes with an intrinsic the target lacks. Each call
    also feeds the simulated-program counters ([sim.*]) in the metrics
    registry.

    [fault_key] opts the call into fault injection: when the harness is
    configured ([Tir_core.Fault]) and the keyed decision for
    ([Measure], [fault_key]) fires, the call raises
    [Tir_core.Fault.Injected] {e before} touching any counter — a lost
    measurement leaves no partial state behind. Retrying callers vary the
    key per attempt. *)
let measure_us ?fault_key target (f : Primfunc.t) =
  (match fault_key with
  | Some key -> Tir_core.Fault.maybe_fail Tir_core.Fault.Measure ~key
  | None -> ());
  let root = Primfunc.root_block f in
  let nests = match root.Stmt.body with Stmt.Seq ss -> ss | s -> [ s ] in
  Tir_obs.Metrics.incr m_measurements;
  Tir_obs.Metrics.add m_nests (List.length nests);
  List.fold_left
    (fun acc nest ->
      let t = tally_of_nest target nest in
      record_tally t;
      acc +. nest_latency_us target t)
    0.0 nests

(** Aggregate tally for the whole function (feature extraction): work and
    traffic sum across root-level nests; parallelism shape takes the
    maximum (nests are separate kernels, not multiplied). Per-nest results
    come from the physical-identity cache, so candidates that share
    unchanged stages with other schedules in the population only re-walk
    the nests their decisions actually touched. *)
let tally_func target (f : Primfunc.t) =
  let root = Primfunc.root_block f in
  let nests = match root.Stmt.body with Stmt.Seq ss -> ss | s -> [ s ] in
  let acc = new_tally () in
  List.iter
    (fun nest ->
      let t = tally_of_nest_cached target nest in
      acc.scalar_ops <- acc.scalar_ops +. t.scalar_ops;
      acc.special_ops <- acc.special_ops +. t.special_ops;
      acc.tensor_flops <- acc.tensor_flops +. t.tensor_flops;
      acc.intrin_calls <- acc.intrin_calls +. t.intrin_calls;
      acc.blocks <- acc.blocks + t.blocks;
      acc.bytes_global <- acc.bytes_global +. t.bytes_global;
      acc.bytes_shared <- acc.bytes_shared +. t.bytes_shared;
      acc.bytes_local <- acc.bytes_local +. t.bytes_local;
      acc.loop_overhead <- acc.loop_overhead +. t.loop_overhead;
      acc.blockidx <- max acc.blockidx t.blockidx;
      acc.threadidx <- max acc.threadidx t.threadidx;
      acc.parallel <- max acc.parallel t.parallel;
      acc.vectorized_frac <- Float.max acc.vectorized_frac t.vectorized_frac;
      acc.uses_tensor_core <- acc.uses_tensor_core || t.uses_tensor_core;
      acc.pipelined <- acc.pipelined || t.pipelined)
    nests;
  acc
