(** Path-based navigation and rewriting of statement trees.

    Schedule primitives are pure IR-to-IR transformations (paper §3.2); the
    zipper locates a loop or block, exposes its enclosing context as a list
    of frames (innermost first), and rebuilds the tree around a replacement
    subtree. Frames are public: primitives pattern-match on them to walk or
    edit the context. *)

open Tir_ir

type frame =
  | F_for of {
      loop_var : Var.t;
      extent : int;
      kind : Stmt.for_kind;
      annotations : (string * string) list;
    }
  | F_seq of Stmt.t list * Stmt.t list  (** reversed prefix, suffix *)
  | F_if_then of Expr.t * Stmt.t option
  | F_if_else of Expr.t * Stmt.t
  | F_block_body of Stmt.block_realize  (** body position of this realize *)
  | F_block_init of Stmt.block_realize  (** init position of this realize *)

type path = frame list
(** Innermost frame first. *)

(** Rebuild the full tree from a path and the subtree at its focus. *)
val rebuild : path -> Stmt.t -> Stmt.t

(** Find the first (pre-order) subtree satisfying the predicate. Returns
    the path (innermost frame first) and the subtree. *)
val find : (Stmt.t -> bool) -> Stmt.t -> (path * Stmt.t) option

val find_loop : Stmt.t -> Var.t -> (path * Stmt.t) option
val find_block_realize : Stmt.t -> string -> (path * Stmt.t) option

(** Loop frames along the path, ordered outermost first. *)
val loops_of_path : path -> (Var.t * int * Stmt.for_kind) list

(** Variable ranges in scope at the focus: enclosing loop variables and
    enclosing block iterator variables. *)
val ranges_of_path : path -> Bound.interval Var.Map.t

(** The innermost enclosing block realize on the path, with the frames
    inside it (between the block body and the focus) and those outside. *)
val enclosing_block : path -> (Stmt.block_realize * path * path) option
