(** Schedule state: the current program plus lookup helpers.

    A schedule wraps a PrimFunc; every primitive is a pure transformation
    applied by replacing [func]. Loops are referenced by their loop
    variables (globally unique), blocks by their (unique) names — both act
    as the "random variables" of TVM's schedule API.

    The state carries a {!Trace.builder}: the facade ([Schedule]) appends
    one typed instruction per applied primitive, so the application history
    is first-class data — serializable, replayable, mutable — rather than a
    write-only string log. *)

open Tir_ir

exception Schedule_error of string

let err fmt = Fmt.kstr (fun s -> raise (Schedule_error s)) fmt

type t = {
  mutable func : Primfunc.t;
  mutable name_counter : int;
  mutable tr : Trace.builder;  (** applied primitives, typed *)
  use_cache : bool;  (** consult {!Apply_cache} in the facade *)
  mutable cache_node : int;  (** current {!Apply_cache} chain node; 0 = none *)
}

let create func =
  { func; name_counter = 0; tr = Trace.builder (); use_cache = false; cache_node = 0 }

(** Like [create], but facade primitives applied to this state go through
    the per-domain {!Apply_cache}: a step already applied to this exact
    state (same chain of primitives from the same physical base function)
    adopts the cached result instead of re-running the transform. Safe only
    because every entity the caller can hold was derived from this state's
    own lineage — sketch application and trace replay qualify; states that
    receive externally created loop [Var]s or [Buffer]s must use [create]. *)
let create_cached func =
  {
    func;
    name_counter = 0;
    tr = Trace.builder ();
    use_cache = true;
    cache_node = Apply_cache.base_node func;
  }

let func t = t.func

let copy t = { t with tr = Trace.clone t.tr }

let builder t = t.tr

let use_cache t = t.use_cache
let cache_node t = t.cache_node
let set_cache_node t n = t.cache_node <- n
let name_counter t = t.name_counter

(** Replace the whole mutable state with a cached snapshot (apply-cache
    hit). [tr] must be a fresh clone — the caller keeps mutating it. *)
let adopt t ~func ~name_counter ~tr ~node =
  t.func <- func;
  t.name_counter <- name_counter;
  t.tr <- tr;
  t.cache_node <- node

(** Applied primitives as a typed trace, oldest first. *)
let instructions t = Trace.instrs t.tr

(** Applied primitives rendered as script lines, oldest first. *)
let trace t = List.map Trace.instr_to_string (instructions t)

let pp_trace ppf t =
  Fmt.pf ppf "@[<v># schedule trace (%d primitives)@,%a@]" (Trace.length t.tr)
    Trace.pp (instructions t)

(** A fresh block/buffer name unique within this schedule. *)
let fresh_name t base =
  t.name_counter <- t.name_counter + 1;
  Printf.sprintf "%s_%d" base t.name_counter

let body t = t.func.Primfunc.body

let set_body t body = t.func <- { t.func with Primfunc.body }

(** Locate a loop by its variable; raises if absent. *)
let loop_path t v =
  match Zipper.find_loop (body t) v with
  | Some (path, Stmt.For r) -> (path, r)
  | _ -> err "loop %a not found" Var.pp v

(** Locate a block realize by name; raises if absent. *)
let block_path t name =
  match Zipper.find_block_realize (body t) name with
  | Some (path, Stmt.Block br) -> (path, br)
  | _ -> err "block %S not found" name

let get_block t name = (snd (block_path t name)).Stmt.block

(** Loop variables enclosing the named block, outermost first. *)
let get_loops t name =
  let path, _ = block_path t name in
  List.map (fun (v, _, _) -> v) (Zipper.loops_of_path path)

let loop_extent t v = (snd (loop_path t v)).Stmt.extent

(** Replace the subtree at [path] with [subtree]. *)
let replace t path subtree = set_body t (Zipper.rebuild path subtree)

(** Root-allocated intermediate buffers. *)
let alloc_buffers t = Primfunc.alloc_buffers t.func

let add_alloc t buf =
  t.func <- Primfunc.with_alloc t.func (alloc_buffers t @ [ buf ])

let remove_alloc t buf =
  t.func <-
    Primfunc.with_alloc t.func
      (List.filter (fun b -> not (Buffer.equal b buf)) (alloc_buffers t))

(** All non-root blocks, pre-order. *)
let blocks t = Primfunc.blocks t.func

(** Simplification context from the ranges in scope at [path]. *)
let simplify_ctx path = { Tir_arith.Simplify.ranges = Zipper.ranges_of_path path }

let simpl path e = Tir_arith.Simplify.simplify (simplify_ctx path) e

(** Prune loops whose body is an empty sequence (used after removing a
    block from its nest). *)
let rec prune_empty (s : Stmt.t) : Stmt.t option =
  match s with
  | Stmt.For r -> (
      match prune_empty r.body with
      | None -> None
      | Some body -> Some (Stmt.For { r with body }))
  | Stmt.Seq ss -> (
      match List.filter_map prune_empty ss with
      | [] -> None
      | ss' -> Some (Stmt.seq ss'))
  | Stmt.If (c, th, el) -> (
      match (prune_empty th, Option.map prune_empty el) with
      | None, (None | Some None) -> None
      | Some th', (None | Some None) -> Some (Stmt.If (c, th', None))
      | None, Some (Some el') -> Some (Stmt.If (Expr.not_ c, el', None))
      | Some th', Some (Some el') -> Some (Stmt.If (c, th', Some el')))
  | Stmt.Block br -> (
      match prune_empty br.block.body with
      | None -> None
      | Some body -> Some (Stmt.Block { br with block = { br.block with body } }))
  | Stmt.Store _ | Stmt.Eval _ -> Some s

(** Remove the realize of block [name] from the tree, pruning emptied
    loops. Returns the removed realize. *)
let remove_block t name =
  let path, br = block_path t name in
  (* Rebuild with an empty Seq in place of the block, then prune. *)
  let rebuilt = Zipper.rebuild path (Stmt.Seq []) in
  (match prune_empty rebuilt with
  | Some body -> set_body t body
  | None -> err "removing block %S empties the function" name);
  br

let pp_schedule ppf t = Printer.pp_func ppf t.func
