(** Caching primitives: cache_read, cache_write, set_scope.

    These introduce the data-movement sub-blocks of the paper's memory
    hierarchy story: a cache block copies a buffer into a new storage scope
    (shared memory, registers, wmma fragments) and the target block is
    redirected to the cached copy. *)

open Tir_ir

(** The root block body as an explicit statement list, plus the index of
    the top-level element containing the named block. Also used by
    [Reduction.rfactor] to splice its final-reduction nest at root scope. *)
val root_elements : State.t -> string -> Stmt.t list * int

val set_root_elements : State.t -> Stmt.t list -> unit

(** [cache_read t block buffer scope] creates a cache of [buffer] in
    [scope], redirects [block]'s reads to it, and places the copy block at
    root scope just before the nest containing [block]. Returns the copy
    block's name. *)
val cache_read : State.t -> string -> Buffer.t -> string -> string

(** [cache_write t block buffer scope] makes [block] write into a cache in
    [scope] and adds a copy-back block after the nest containing [block].
    Returns the copy-back block's name. *)
val cache_write : State.t -> string -> Buffer.t -> string -> string

(** Change the storage scope of an intermediate buffer everywhere; returns
    the re-scoped buffer. *)
val set_scope : State.t -> Buffer.t -> string -> Buffer.t
