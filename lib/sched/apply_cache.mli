(** Memoized primitive applications — the engine behind incremental trace
    replay and incremental sketch application.

    Entries snapshot the complete schedule state after one facade step and
    are keyed by [(parent chain node, pre-key)], where the pre-key is the
    RV-relative spelling of the primitive and its inputs. Chains are rooted
    at a per-physical-base-function node, so a hit can only extend the
    exact stored lineage — the adopted function and its entities are always
    coherent with the loop variables and buffers the caller already holds
    from earlier steps. Tables are per-domain; results are bit-identical
    with the cache on or off (see the implementation header for the full
    argument). *)

open Tir_ir

(** A primitive's outputs, as stored in a snapshot. *)
type outs =
  | R_unit
  | R_loop of Var.t
  | R_loops of Var.t list
  | R_block of string
  | R_buf of Buffer.t

type entry = {
  e_node : int;  (** this snapshot's chain node id *)
  e_func : Primfunc.t;
  e_name_counter : int;
  e_builder : Trace.builder;  (** frozen post-record snapshot; clone to use *)
  e_outs : outs;
}

(** Defaults to on; env [TIR_APPLY_CACHE=0] (or [off]) disables. *)
val set_enabled : bool -> unit

val is_enabled : unit -> bool

(** Chain root for a base function, unique per physical function value per
    domain. *)
val base_node : Primfunc.t -> int

val find : parent:int -> prekey:string -> entry option

(** Snapshot a just-applied step and return its entry (carrying the fresh
    node id). [builder] must be a frozen clone. *)
val store :
  parent:int ->
  prekey:string ->
  func:Primfunc.t ->
  name_counter:int ->
  builder:Trace.builder ->
  outs:outs ->
  entry

(** Cumulative (process-wide) hit/miss counters, in that order. *)
val stats : unit -> int * int

(** Drop the calling domain's tables and zero the counters. *)
val clear : unit -> unit
