(** Isolate the subtree under a loop as a new block (paper Figure 7). *)

open Tir_ir

(** Returns the new block's name. Also the first step of
    [Tensorize.tensorize]. *)
val blockize : State.t -> Var.t -> string
