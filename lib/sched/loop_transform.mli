(** Loop transformations: split, fuse, reorder, kind changes, annotations.

    Pure IR→IR rewrites over {!State.t}; all raise [State.Schedule_error]
    on misuse and leave the program untouched. Recording on the schedule
    trace is the facade's job ([Schedule]) — these entry points do not
    touch the trace. *)

open Tir_ir

(** Split a loop into nested loops with the given extents (outermost
    first); at most one factor may be [0] = inferred. Non-divisible splits
    push a predicate into the contained blocks. Returns the new loop
    variables, outermost first. *)
val split : State.t -> Var.t -> factors:int list -> Var.t list

(** Fuse two perfectly nested loops; returns the fused variable. *)
val fuse : State.t -> Var.t -> Var.t -> Var.t

val fuse_many : State.t -> Var.t list -> Var.t

(** Permute loops of one perfectly nested chain into the given order. *)
val reorder : State.t -> Var.t list -> unit

(** Bind a loop to a GPU thread axis (e.g. "blockIdx.x", "threadIdx.y"). *)
val bind : State.t -> Var.t -> string -> unit

val parallel : State.t -> Var.t -> unit
val vectorize : State.t -> Var.t -> unit
val unroll : State.t -> Var.t -> unit
val annotate : State.t -> Var.t -> string -> string -> unit
val annotate_block : State.t -> string -> string -> string -> unit
