(** First-class schedule traces (paper §3.2, §4.4).

    A trace is the typed application history of a schedule: one instruction
    per primitive, with symbolic random variables as operands. Loop RVs
    ([l<n>]) and derived-block RVs ([b<n>]) are defined by the instruction
    that produced them; original blocks and buffers are named literals.
    Because operands are symbolic, a trace is independent of the concrete
    per-process loop-variable identities of the program it was recorded
    against — it can be serialized, stored in the tuning database, mutated
    by the evolutionary search, and replayed on a fresh function
    ([Schedule.replay]).

    The text form is line-oriented and human-inspectable:
    {v
    l0, l1, l2 = get_loops(%"C")
    l3, l4 = split(l0, [4, 8])
    b0 = cache_read(%"C", @"A", "shared")
    decide("tile_x", 3)
    v}
    Blank lines and [#] comments are ignored on parse; [to_string] and
    [of_string] round-trip. *)

(** {2 Instructions} *)

type loop_rv = int
type block_rv = int

(** Original blocks are addressed by their (stable) name; blocks created by
    an earlier instruction by that instruction's output RV. *)
type block_ref = Bname of string | Brv of block_rv

type instr =
  | Get_loops of { block : block_ref; outs : loop_rv list }
  | Split of { loop : loop_rv; factors : int list; outs : loop_rv list }
  | Fuse of { a : loop_rv; b : loop_rv; out : loop_rv }
  | Fuse_many of { loops : loop_rv list; out : loop_rv }
  | Reorder of { loops : loop_rv list }
  | Bind of { loop : loop_rv; thread : string }
  | Parallel of { loop : loop_rv }
  | Vectorize of { loop : loop_rv }
  | Unroll of { loop : loop_rv }
  | Annotate of { loop : loop_rv; key : string; value : string }
  | Annotate_block of { block : block_ref; key : string; value : string }
  | Compute_at of { block : block_ref; loop : loop_rv }
  | Reverse_compute_at of { block : block_ref; loop : loop_rv }
  | Compute_inline of { block : block_ref }
  | Reverse_compute_inline of { block : block_ref }
  | Cache_read of { block : block_ref; buffer : string; scope : string; out : block_rv }
  | Cache_write of { block : block_ref; buffer : string; scope : string; out : block_rv }
  | Set_scope of { buffer : string; scope : string }
  | Blockize of { loop : loop_rv; out : block_rv }
  | Tensorize of { loop : loop_rv; intrin : string; out : block_rv }
  | Tensorize_block of { block : block_ref; intrin : string }
  | Decompose_reduction of { block : block_ref; loop : loop_rv; out : block_rv }
  | Merge_reduction of { init : block_ref; update : block_ref }
  | Rfactor of { block : block_ref; loop : loop_rv; out : block_rv }
  | Decide of { knob : string; choice : int }
      (** Not a transformation: records the value chosen for a tuning knob,
          making the trace self-contained for database replay. *)

type t = instr list
(** Oldest first. *)

val equal : t -> t -> bool

(** {2 Serialization} *)

exception Parse_error of string

val instr_to_string : instr -> string
val pp_instr : Format.formatter -> instr -> unit
val pp : Format.formatter -> t -> unit

(** One instruction per line. *)
val to_string : t -> string

(** Inverse of [to_string]; skips blank lines and [#] comments. Raises
    {!Parse_error} on malformed input. *)
val of_string : string -> t

(** [of_string] with the unified error surface: malformed input returns
    [Error] with kind [Parse] instead of raising. *)
val of_string_result : string -> (t, Tir_core.Error.t) result

(** Parse one line; [None] for a blank line or [#] comment. *)
val instr_of_string : string -> instr option

(** The knob decisions recorded in the trace, oldest first; a knob decided
    more than once keeps its first value. *)
val decisions : t -> (string * int) list

(** {2 Recording}

    A [builder] is the mutable recording state carried by a schedule. The
    [record_*] functions intern concrete loop variables and block names
    into RVs: outputs always define fresh RVs; a loop input that no traced
    instruction produced is assigned a fresh, never-defined RV (recording
    never fails — replay reports the unbound RV if the trace is genuinely
    incomplete); a block input is a [Brv] if a traced instruction created
    the block and a [Bname] literal otherwise. *)

type builder

val builder : unit -> builder

(** Independent copy (shares nothing mutable) — used by [Schedule.copy]. *)
val clone : builder -> builder

(** Recorded instructions, oldest first. *)
val instrs : builder -> t

val length : builder -> int

(** {2 Pre-keys}

    The RV-relative spelling of a primitive {e input} ([l<n>], [b<n>] or
    [%name]), computed {e before} the primitive runs. RV numbering is a pure
    function of the instruction sequence, so schedules that applied the same
    primitives to the same base spell their inputs identically — the apply
    cache keys on this. Interning is idempotent: computing a pre-key and
    then recording the instruction assigns the same RVs as recording
    directly. *)

val loop_key : builder -> Tir_ir.Var.t -> string
val block_key : builder -> string -> string

val record_get_loops : builder -> block:string -> outs:Tir_ir.Var.t list -> unit
val record_split :
  builder -> loop:Tir_ir.Var.t -> factors:int list -> outs:Tir_ir.Var.t list -> unit
val record_fuse : builder -> a:Tir_ir.Var.t -> b:Tir_ir.Var.t -> out:Tir_ir.Var.t -> unit
val record_fuse_many : builder -> loops:Tir_ir.Var.t list -> out:Tir_ir.Var.t -> unit
val record_reorder : builder -> loops:Tir_ir.Var.t list -> unit
val record_bind : builder -> loop:Tir_ir.Var.t -> thread:string -> unit
val record_parallel : builder -> loop:Tir_ir.Var.t -> unit
val record_vectorize : builder -> loop:Tir_ir.Var.t -> unit
val record_unroll : builder -> loop:Tir_ir.Var.t -> unit
val record_annotate : builder -> loop:Tir_ir.Var.t -> key:string -> value:string -> unit
val record_annotate_block : builder -> block:string -> key:string -> value:string -> unit
val record_compute_at : builder -> block:string -> loop:Tir_ir.Var.t -> unit
val record_reverse_compute_at : builder -> block:string -> loop:Tir_ir.Var.t -> unit
val record_compute_inline : builder -> block:string -> unit
val record_reverse_compute_inline : builder -> block:string -> unit
val record_cache_read :
  builder -> block:string -> buffer:string -> scope:string -> out:string -> unit
val record_cache_write :
  builder -> block:string -> buffer:string -> scope:string -> out:string -> unit
val record_set_scope : builder -> buffer:string -> scope:string -> unit
val record_blockize : builder -> loop:Tir_ir.Var.t -> out:string -> unit
val record_tensorize : builder -> loop:Tir_ir.Var.t -> intrin:string -> out:string -> unit
val record_tensorize_block : builder -> block:string -> intrin:string -> unit
val record_decompose_reduction :
  builder -> block:string -> loop:Tir_ir.Var.t -> out:string -> unit
val record_merge_reduction : builder -> init:string -> update:string -> unit
val record_rfactor : builder -> block:string -> loop:Tir_ir.Var.t -> out:string -> unit
val record_decide : builder -> knob:string -> choice:int -> unit
