(** Schedule facade: the complete primitive set of paper §3.2 over one
    state type. Every primitive is a standalone TensorIR-to-TensorIR
    transformation; the program can be printed between any two steps and
    validated at any point, and each application is recorded on the trace.

    Loops are referenced by their (globally unique) loop variables, blocks
    by their (unique) names — the "random variables" of the schedule API.
    Primitives raise [Schedule_error] on misuse and leave the program
    untouched. *)

open Tir_ir

exception Schedule_error of string

type t

(** {2 State} *)

val create : Primfunc.t -> t

(** Like [create], but primitive applications go through the per-domain
    {!Apply_cache}: a step already applied to this exact state (same chain
    of primitives from the same physical base function) adopts the cached
    snapshot instead of re-running the transform, making repeated sketch
    application and trace replay incremental. Results are bit-identical to
    [create]. Safe only when every loop [Var] / [Buffer] handed to
    primitives derives from this schedule's own lineage (primitive outputs,
    [get_block]/[blocks] lookups); callers passing externally created
    entities must use [create]. *)
val create_cached : Primfunc.t -> t

val func : t -> Primfunc.t
val copy : t -> t

(** Applied primitives as a typed trace, oldest first. Serializable via
    {!Trace.to_string} and replayable via {!replay}. *)
val instructions : t -> Trace.t

(** [instructions] rendered as script lines, oldest first. *)
val trace : t -> string list

val pp_trace : Format.formatter -> t -> unit
val pp : Format.formatter -> t -> unit

(** Append a tuning-knob decision ([Trace.Decide]) to the trace, so a
    serialized trace carries the decision vector it was generated from. *)
val record_decision : t -> string -> int -> unit

(** Re-apply a trace to a fresh function, re-binding loop/block RVs as each
    instruction defines them and re-validating each primitive. Raises
    [Schedule_error] on an unbound RV, an arity mismatch, or any primitive
    failure. [instructions (replay tr f) = tr]. *)
val replay : Trace.t -> Primfunc.t -> t

(** {2 Lookup} *)

val get_block : t -> string -> Stmt.block

(** Loop variables enclosing the named block, outermost first. *)
val get_loops : t -> string -> Var.t list

val loop_extent : t -> Var.t -> int
val blocks : t -> Stmt.block_realize list
val alloc_buffers : t -> Buffer.t list

(** {2 Loop transformations} *)

(** Split a loop into nested loops with the given extents (outermost
    first); at most one factor may be [0] = inferred. Non-divisible splits
    push a predicate into the contained blocks. Returns the new loop
    variables, outermost first. *)
val split : t -> Var.t -> factors:int list -> Var.t list

(** Fuse two perfectly nested loops; returns the fused variable. *)
val fuse : t -> Var.t -> Var.t -> Var.t

val fuse_many : t -> Var.t list -> Var.t

(** Permute loops of one perfectly nested chain into the given order. *)
val reorder : t -> Var.t list -> unit

(** Bind a loop to a GPU thread axis (e.g. "blockIdx.x", "threadIdx.y"). *)
val bind : t -> Var.t -> string -> unit

val parallel : t -> Var.t -> unit
val vectorize : t -> Var.t -> unit
val unroll : t -> Var.t -> unit
val annotate : t -> Var.t -> string -> string -> unit
val annotate_block : t -> string -> string -> string -> unit

(** {2 Compute location} *)

(** Move a producer block to compute, just-in-time, the region consumed
    inside the target loop's subtree. *)
val compute_at : t -> string -> Var.t -> unit

(** Move a consumer block to consume, immediately, the region produced
    inside the target loop's subtree. *)
val reverse_compute_at : t -> string -> Var.t -> unit

(** Remove an injective elementwise producer by substituting its
    definition into all consumers. *)
val compute_inline : t -> string -> unit

(** Fold an elementwise consumer back into its (non-reduction) producer. *)
val reverse_compute_inline : t -> string -> unit

(** {2 Block hierarchy} *)

(** Cache a buffer read by a block in a new scope; returns the copy
    block's name (position it with [compute_at]). *)
val cache_read : t -> string -> Buffer.t -> string -> string

(** Make a block write through a cache in a new scope; returns the
    copy-back block's name. *)
val cache_write : t -> string -> Buffer.t -> string -> string

(** Change the storage scope of an intermediate buffer; returns the
    re-scoped buffer. *)
val set_scope : t -> Buffer.t -> string -> Buffer.t

(** Isolate the subtree under a loop as a new block (paper Figure 7);
    returns its name. *)
val blockize : t -> Var.t -> string

(** Blockize then replace the isolated computation with a registered
    tensor intrinsic (paper §4.1); returns the tensorized block's name. *)
val tensorize : t -> Var.t -> string -> string

val tensorize_block : t -> string -> string -> unit

(** Hoist a reduction's init statement into its own block before the given
    loop; returns the init block's name (paper §3.1). *)
val decompose_reduction : t -> string -> Var.t -> string

(** Inverse of [decompose_reduction]. *)
val merge_reduction : t -> string -> string -> unit

(** Factor a reduction loop into a spatial dimension of a partial-result
    buffer plus a final reduction block, enabling parallelization of the
    loop; returns the final block's name. *)
val rfactor : t -> string -> Var.t -> string

(** {2 Validation (paper §3.3)} *)

val validate : t -> Validate.issue list
val validate_exn : t -> unit
val is_valid : t -> bool

(** {2 Deep checking}

    When enabled — via [set_deep_check true] or the [TIR_DEEPCHECK]
    environment variable (any value other than empty or ["0"]) — every
    transforming primitive re-runs the semantic analyzer (data-race,
    region-soundness, bounds) on its result and raises [Schedule_error]
    listing the diagnostics on any error-severity finding. A debugging
    net for primitive development, not a transaction: the primitive has
    already applied when the error is raised. *)

val set_deep_check : bool -> unit
val deep_check_enabled : unit -> bool

(** {2 Low-level access}

    The zipper interface new primitives are written against — the paper's
    §3.2 point that primitives are independent transformations over a
    stable abstraction, so they can be developed concurrently. *)

val body : t -> Stmt.t
val set_body : t -> Stmt.t -> unit

(** Path and record of the loop with this variable; raises if absent. *)
val loop_path : t -> Var.t -> Zipper.path * Stmt.for_

(** Path and realize of the named block; raises if absent. *)
val block_path : t -> string -> Zipper.path * Stmt.block_realize

(** Replace the subtree at a path. *)
val replace : t -> Zipper.path -> Stmt.t -> unit

(** Detach the named block's realize, pruning emptied loops. *)
val remove_block : t -> string -> Stmt.block_realize

(** A fresh block/buffer name unique within this schedule. *)
val fresh_name : t -> string -> string
