(** Reduction primitives: decompose/merge init statements and rfactor. *)

open Tir_ir

(** Hoist a reduction's init statement into its own block before the given
    loop; returns the init block's name (paper §3.1). *)
val decompose_reduction : State.t -> string -> Var.t -> string

(** Inverse of [decompose_reduction]. *)
val merge_reduction : State.t -> string -> string -> unit

(** Factor a reduction loop into a spatial dimension of a partial-result
    buffer plus a final reduction block; returns the final block's name. *)
val rfactor : State.t -> string -> Var.t -> string
