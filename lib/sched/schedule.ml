(** Schedule facade: the full primitive set over one state type.

    Mirrors the paper's §3.2 catalogue. Each primitive is a standalone
    TensorIR-to-TensorIR transformation; the schedule can be printed between
    any two steps ([pp]) and validated at any point ([validate]).

    Every successful application appends one typed {!Trace.instr} to the
    schedule's trace — nothing is recorded when a primitive raises
    [Schedule_error] — so [instructions] is always a replayable script:
    [replay (instructions t) f] rebuilds an equivalent schedule on a fresh
    copy of the original function. *)

include State

(* Deep-check mode: when enabled (env TIR_DEEPCHECK=1 or
   [set_deep_check true]), every transforming primitive re-runs the
   semantic analyzer (race / region-soundness / bounds) on the resulting
   program and raises [Schedule_error] on any error-severity finding. The
   offending primitive has already mutated the schedule when the error is
   raised — deep check is a debugging net, not a transaction. *)
let deep_check_flag =
  ref
    (match Sys.getenv_opt "TIR_DEEPCHECK" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let set_deep_check b = deep_check_flag := b
let deep_check_enabled () = !deep_check_flag

let deep t =
  if !deep_check_flag then
    match Tir_analysis.Analysis.errors (func t) with
    | [] -> ()
    | ds ->
        err "deep check failed:@,%a"
          (Fmt.list ~sep:Fmt.cut Tir_analysis.Diagnostic.pp)
          ds

(* Translation validation of the legality prover, active only in
   deep-check mode: every gated primitive asks {!Tir_analysis.Legality}
   for a verdict on the pre-transform program and cross-checks it against
   what actually happens. A disagreement in either direction — proven
   [Illegal] yet the transform goes through cleanly, or proven [Legal] yet
   the primitive raises (or the analyzer flags the result) — is a prover
   bug and raises [Schedule_error]. Outcomes feed the [legality.agree] /
   [legality.disagree] counters; [Unknown] verdicts validate nothing. *)
module L = Tir_analysis.Legality
module Diag = Tir_analysis.Diagnostic

(* Static gate (reorder, software-pipeline annotations): the dynamic
   primitive has no semantic check of its own, so a proven-illegal verdict
   refuses the transform up front. *)
let static_gate vf =
  if !deep_check_flag then begin
    let verdict = vf () in
    L.count verdict;
    match verdict with
    | L.Illegal d -> err "legality: %a" Diag.pp d
    | L.Legal | L.Unknown -> ()
  end

(* Mirror gate (split / fuse / inline / compute-location): the verdict
   mirrors the primitive's own applicability guards, so [Illegal] must
   coincide with a [Schedule_error] and [Legal] with clean application. *)
let mirror_gate vf prim =
  if not !deep_check_flag then prim ()
  else begin
    let verdict = vf () in
    L.count verdict;
    match prim () with
    | r -> (
        match verdict with
        | L.Illegal d ->
            L.count_agreement false;
            err
              "legality prover bug: proven illegal (%a) but the primitive \
               applied cleanly"
              Diag.pp d
        | L.Legal ->
            L.count_agreement true;
            r
        | L.Unknown -> r)
    | exception (Schedule_error m as e) -> (
        match verdict with
        | L.Illegal _ ->
            L.count_agreement true;
            raise e
        | L.Legal ->
            L.count_agreement false;
            err "legality prover bug: proven legal but the primitive failed: %s"
              m
        | L.Unknown -> raise e)
  end

(* Race gate (parallel / vectorize / bind): the carried-dependence verdict
   predicts the race analyzer's judgement of the applied program, so the
   gate applies the primitive and compares. The cross-check is skipped when
   the program already carries analyzer errors (attribution would be
   ambiguous); the usual [deep] sweep still raises afterwards. *)
let race_gate t v kind prim =
  if not !deep_check_flag then prim ()
  else begin
    let f0 = func t in
    let pre_errors = Tir_analysis.Analysis.errors f0 in
    let verdict = L.parallelize_kind f0 v kind in
    L.count verdict;
    match prim () with
    | () ->
        if pre_errors = [] then begin
          let post_race =
            List.filter
              (fun (d : Diag.t) -> Diag.is_error d && d.Diag.kind = Diag.Race)
              (Tir_analysis.Analysis.check_func (func t))
          in
          match verdict with
          | L.Illegal d ->
              if post_race = [] then begin
                L.count_agreement false;
                err
                  "legality prover bug: proven illegal (%a) but the analyzer \
                   finds no race after applying"
                  Diag.pp d
              end
              else L.count_agreement true
          | L.Legal -> (
              match post_race with
              | [] -> L.count_agreement true
              | d :: _ ->
                  L.count_agreement false;
                  err
                    "legality prover bug: proven legal but the analyzer finds \
                     a race after applying: %a"
                    Diag.pp d)
          | L.Unknown -> ()
        end
    | exception (Schedule_error _ as e) ->
        (match verdict with
        | L.Illegal _ -> L.count_agreement true
        | L.Legal -> L.count_agreement false
        | L.Unknown -> ());
        raise e
  end

(* The apply cache: on states created with [create_cached], every facade
   step first probes the per-domain cache under (current chain node,
   opcode+inputs pre-key). A hit adopts the snapshot — function, name
   counter, a clone of the recorded builder, the primitive's outputs — in
   O(1); a miss runs the transform and snapshots the result. Failed
   primitives store nothing (a transform may mutate the state before
   raising). Deep-check mode bypasses the cache so every step really
   re-runs the analyzer. *)
module A = Apply_cache

let pk parts = String.concat "\x1f" parts

let step t ~(key : unit -> string) ~(run : unit -> A.outs) : A.outs =
  if (not (State.use_cache t)) || (not (A.is_enabled ())) || !deep_check_flag then
    run ()
  else
    let parent = State.cache_node t in
    let prekey = key () in
    match A.find ~parent ~prekey with
    | Some e ->
        State.adopt t ~func:e.A.e_func ~name_counter:e.A.e_name_counter
          ~tr:(Trace.clone e.A.e_builder) ~node:e.A.e_node;
        e.A.e_outs
    | None ->
        let outs = run () in
        let e =
          A.store ~parent ~prekey ~func:(func t)
            ~name_counter:(State.name_counter t)
            ~builder:(Trace.clone (builder t)) ~outs
        in
        State.set_cache_node t e.A.e_node;
        outs

let as_unit = function A.R_unit -> () | _ -> assert false
let as_loop = function A.R_loop v -> v | _ -> assert false
let as_loops = function A.R_loops vs -> vs | _ -> assert false
let as_block = function A.R_block n -> n | _ -> assert false
let as_buf = function A.R_buf b -> b | _ -> assert false

(* Loop transformations. Each primitive records a structured instruction on
   the schedule trace so a tuning result carries its own reproducible,
   serializable script. *)
let split t v ~factors =
  as_loops
    (step t
       ~key:(fun () ->
         pk
           ("split" :: Trace.loop_key (builder t) v
           :: List.map string_of_int factors))
       ~run:(fun () ->
         let r =
           mirror_gate
             (fun () -> L.split (func t) v ~factors)
             (fun () -> Loop_transform.split t v ~factors)
         in
         Trace.record_split (builder t) ~loop:v ~factors ~outs:r;
         deep t;
         A.R_loops r))

let fuse t a b =
  as_loop
    (step t
       ~key:(fun () ->
         let b' = builder t in
         pk [ "fuse"; Trace.loop_key b' a; Trace.loop_key b' b ])
       ~run:(fun () ->
         let r =
           mirror_gate
             (fun () -> L.fuse (func t) a b)
             (fun () -> Loop_transform.fuse t a b)
         in
         Trace.record_fuse (builder t) ~a ~b ~out:r;
         deep t;
         A.R_loop r))

let fuse_many t vs =
  as_loop
    (step t
       ~key:(fun () ->
         let b = builder t in
         pk ("fuse_many" :: List.map (Trace.loop_key b) vs))
       ~run:(fun () ->
         let r =
           mirror_gate
             (fun () -> L.fuse_many (func t) vs)
             (fun () -> Loop_transform.fuse_many t vs)
         in
         Trace.record_fuse_many (builder t) ~loops:vs ~out:r;
         deep t;
         A.R_loop r))

let reorder t vs =
  as_unit
    (step t
       ~key:(fun () ->
         let b = builder t in
         pk ("reorder" :: List.map (Trace.loop_key b) vs))
       ~run:(fun () ->
         (* The dynamic primitive checks structure only; the carried-
            dependence half of the verdict is the prover's alone, so a
            proven-illegal reorder is refused up front. *)
         static_gate (fun () -> L.reorder_carried (func t) vs);
         Loop_transform.reorder t vs;
         Trace.record_reorder (builder t) ~loops:vs;
         deep t;
         A.R_unit))

let bind t v axis =
  as_unit
    (step t
       ~key:(fun () -> pk [ "bind"; Trace.loop_key (builder t) v; axis ])
       ~run:(fun () ->
         race_gate t v (Tir_ir.Stmt.Thread_binding axis) (fun () ->
             Loop_transform.bind t v axis);
         Trace.record_bind (builder t) ~loop:v ~thread:axis;
         deep t;
         A.R_unit))

let parallel t v =
  as_unit
    (step t
       ~key:(fun () -> pk [ "parallel"; Trace.loop_key (builder t) v ])
       ~run:(fun () ->
         race_gate t v Tir_ir.Stmt.Parallel (fun () ->
             Loop_transform.parallel t v);
         Trace.record_parallel (builder t) ~loop:v;
         deep t;
         A.R_unit))

let vectorize t v =
  as_unit
    (step t
       ~key:(fun () -> pk [ "vectorize"; Trace.loop_key (builder t) v ])
       ~run:(fun () ->
         race_gate t v Tir_ir.Stmt.Vectorized (fun () ->
             Loop_transform.vectorize t v);
         Trace.record_vectorize (builder t) ~loop:v;
         deep t;
         A.R_unit))

let unroll t v =
  as_unit
    (step t
       ~key:(fun () -> pk [ "unroll"; Trace.loop_key (builder t) v ])
       ~run:(fun () ->
         Loop_transform.unroll t v;
         Trace.record_unroll (builder t) ~loop:v;
         deep t;
         A.R_unit))

let annotate t v k value =
  as_unit
    (step t
       ~key:(fun () -> pk [ "annotate"; Trace.loop_key (builder t) v; k; value ])
       ~run:(fun () ->
         (if String.equal k "software_pipeline" then
            match int_of_string_opt (String.trim value) with
            | Some stages when stages > 1 ->
                static_gate (fun () ->
                    L.software_pipeline (func t) v ~stages)
            | Some _ | None -> ());
         Loop_transform.annotate t v k value;
         Trace.record_annotate (builder t) ~loop:v ~key:k ~value;
         deep t;
         A.R_unit))

let annotate_block t name k value =
  as_unit
    (step t
       ~key:(fun () ->
         pk [ "annotate_block"; Trace.block_key (builder t) name; k; value ])
       ~run:(fun () ->
         Loop_transform.annotate_block t name k value;
         Trace.record_annotate_block (builder t) ~block:name ~key:k ~value;
         deep t;
         A.R_unit))

(* Lookup. [get_loops] defines the loop RVs later instructions consume, so
   it is itself traced (the internal [State.get_loops] is not) — and
   therefore also a cache step, keeping the chain in lockstep with the
   trace. *)
let get_loops t name =
  as_loops
    (step t
       ~key:(fun () -> pk [ "get_loops"; Trace.block_key (builder t) name ])
       ~run:(fun () ->
         let ls = State.get_loops t name in
         Trace.record_get_loops (builder t) ~block:name ~outs:ls;
         A.R_loops ls))

(* Compute location *)
let compute_at t name v =
  as_unit
    (step t
       ~key:(fun () ->
         let b = builder t in
         pk [ "compute_at"; Trace.block_key b name; Trace.loop_key b v ])
       ~run:(fun () ->
         mirror_gate
           (fun () -> L.compute_at (func t) name v)
           (fun () -> Compute_location.compute_at t name v);
         Trace.record_compute_at (builder t) ~block:name ~loop:v;
         deep t;
         A.R_unit))

let reverse_compute_at t name v =
  as_unit
    (step t
       ~key:(fun () ->
         let b = builder t in
         pk [ "reverse_compute_at"; Trace.block_key b name; Trace.loop_key b v ])
       ~run:(fun () ->
         mirror_gate
           (fun () -> L.reverse_compute_at (func t) name v)
           (fun () -> Compute_location.reverse_compute_at t name v);
         Trace.record_reverse_compute_at (builder t) ~block:name ~loop:v;
         deep t;
         A.R_unit))

let compute_inline t name =
  as_unit
    (step t
       ~key:(fun () -> pk [ "compute_inline"; Trace.block_key (builder t) name ])
       ~run:(fun () ->
         mirror_gate
           (fun () -> L.compute_inline (func t) name)
           (fun () -> Inline.compute_inline t name);
         Trace.record_compute_inline (builder t) ~block:name;
         deep t;
         A.R_unit))

let reverse_compute_inline t name =
  as_unit
    (step t
       ~key:(fun () ->
         pk [ "reverse_compute_inline"; Trace.block_key (builder t) name ])
       ~run:(fun () ->
         mirror_gate
           (fun () -> L.reverse_compute_inline (func t) name)
           (fun () -> Inline.reverse_compute_inline t name);
         Trace.record_reverse_compute_inline (builder t) ~block:name;
         deep t;
         A.R_unit))

(* Block hierarchy *)
let cache_read t name buf scope =
  as_block
    (step t
       ~key:(fun () ->
         pk
           [
             "cache_read"; Trace.block_key (builder t) name;
             buf.Tir_ir.Buffer.name; scope;
           ])
       ~run:(fun () ->
         let r = Cache.cache_read t name buf scope in
         Trace.record_cache_read (builder t) ~block:name
           ~buffer:buf.Tir_ir.Buffer.name ~scope ~out:r;
         deep t;
         A.R_block r))

let cache_write t name buf scope =
  as_block
    (step t
       ~key:(fun () ->
         pk
           [
             "cache_write"; Trace.block_key (builder t) name;
             buf.Tir_ir.Buffer.name; scope;
           ])
       ~run:(fun () ->
         let r = Cache.cache_write t name buf scope in
         Trace.record_cache_write (builder t) ~block:name
           ~buffer:buf.Tir_ir.Buffer.name ~scope ~out:r;
         deep t;
         A.R_block r))

let set_scope t buf scope =
  as_buf
    (step t
       ~key:(fun () -> pk [ "set_scope"; buf.Tir_ir.Buffer.name; scope ])
       ~run:(fun () ->
         let r = Cache.set_scope t buf scope in
         Trace.record_set_scope (builder t) ~buffer:buf.Tir_ir.Buffer.name ~scope;
         deep t;
         A.R_buf r))

let blockize t v =
  as_block
    (step t
       ~key:(fun () -> pk [ "blockize"; Trace.loop_key (builder t) v ])
       ~run:(fun () ->
         let r = Blockize.blockize t v in
         Trace.record_blockize (builder t) ~loop:v ~out:r;
         deep t;
         A.R_block r))

let tensorize t v intrin =
  as_block
    (step t
       ~key:(fun () -> pk [ "tensorize"; Trace.loop_key (builder t) v; intrin ])
       ~run:(fun () ->
         let r = Tensorize.tensorize t v intrin in
         Trace.record_tensorize (builder t) ~loop:v ~intrin ~out:r;
         deep t;
         A.R_block r))

let tensorize_block t name intrin =
  as_unit
    (step t
       ~key:(fun () ->
         pk [ "tensorize_block"; Trace.block_key (builder t) name; intrin ])
       ~run:(fun () ->
         Tensorize.tensorize_block t name intrin;
         Trace.record_tensorize_block (builder t) ~block:name ~intrin;
         deep t;
         A.R_unit))

let decompose_reduction t name v =
  as_block
    (step t
       ~key:(fun () ->
         let b = builder t in
         pk [ "decompose_reduction"; Trace.block_key b name; Trace.loop_key b v ])
       ~run:(fun () ->
         let r = Reduction.decompose_reduction t name v in
         Trace.record_decompose_reduction (builder t) ~block:name ~loop:v ~out:r;
         deep t;
         A.R_block r))

let merge_reduction t init update =
  as_unit
    (step t
       ~key:(fun () ->
         let b = builder t in
         pk [ "merge_reduction"; Trace.block_key b init; Trace.block_key b update ])
       ~run:(fun () ->
         Reduction.merge_reduction t init update;
         Trace.record_merge_reduction (builder t) ~init ~update;
         deep t;
         A.R_unit))

let rfactor t name v =
  as_block
    (step t
       ~key:(fun () ->
         let b = builder t in
         pk [ "rfactor"; Trace.block_key b name; Trace.loop_key b v ])
       ~run:(fun () ->
         let r = Reduction.rfactor t name v in
         Trace.record_rfactor (builder t) ~block:name ~loop:v ~out:r;
         deep t;
         A.R_block r))

(* Decisions *)

(** Record a tuning-knob decision on the trace. Sketches call this for the
    full knob vector while scheduling, so a serialized trace carries the
    complete decision assignment it was generated from. [Decide] is not a
    transformation, but it is a trace instruction, so it is a cache step
    like any other — the chain stays in lockstep with the trace. *)
let record_decision t knob choice =
  as_unit
    (step t
       ~key:(fun () -> pk [ "decide"; knob; string_of_int choice ])
       ~run:(fun () ->
         Trace.record_decide (builder t) ~knob ~choice;
         A.R_unit))

(* Validation *)
let validate t = Validate.check_func (func t)
let validate_exn t = Validate.check_exn (func t)
let is_valid t = Validate.is_valid (func t)

let pp = pp_schedule

(* Replay *)

(** Re-apply a trace to a fresh function, re-binding loop and block RVs as
    each instruction defines them. Raises [Schedule_error] on an unbound RV,
    an arity mismatch, or any primitive failure — the trace is re-validated
    by construction since it goes through the same primitives. The rebuilt
    schedule records the same trace: [instructions (replay tr f) = tr].

    Replay is incremental: the state is cache-enabled, so re-replaying a
    trace — or a trace sharing an instruction prefix with one already
    applied on this domain against the same physical function — adopts the
    shared prefix from the apply cache and only re-runs the divergent
    suffix. *)
let replay (tr : Trace.t) (f : Tir_ir.Primfunc.t) : t =
  let t = create_cached f in
  let loops : (Trace.loop_rv, Tir_ir.Var.t) Hashtbl.t = Hashtbl.create 64 in
  let blocks : (Trace.block_rv, string) Hashtbl.t = Hashtbl.create 16 in
  let loop rv =
    match Hashtbl.find_opt loops rv with
    | Some v -> v
    | None -> err "replay: unbound loop RV l%d" rv
  in
  let bind_loop rv v = Hashtbl.replace loops rv v in
  let bind_loops ctx rvs vs =
    if List.length rvs <> List.length vs then
      err "replay: %s binds %d loops, instruction expects %d" ctx (List.length vs)
        (List.length rvs);
    List.iter2 bind_loop rvs vs
  in
  let block = function
    | Trace.Bname n -> n
    | Trace.Brv rv -> (
        match Hashtbl.find_opt blocks rv with
        | Some n -> n
        | None -> err "replay: unbound block RV b%d" rv)
  in
  let bind_block rv n = Hashtbl.replace blocks rv n in
  let buffer name =
    match
      List.find_opt
        (fun b -> String.equal b.Tir_ir.Buffer.name name)
        (Tir_ir.Primfunc.all_buffers (func t))
    with
    | Some b -> b
    | None -> err "replay: buffer %S not found" name
  in
  List.iter
    (fun (i : Trace.instr) ->
      match i with
      | Trace.Get_loops { block = b; outs } ->
          bind_loops "get_loops" outs (get_loops t (block b))
      | Trace.Split { loop = l; factors; outs } ->
          bind_loops "split" outs (split t (loop l) ~factors)
      | Trace.Fuse { a; b; out } -> bind_loop out (fuse t (loop a) (loop b))
      | Trace.Fuse_many { loops = ls; out } ->
          bind_loop out (fuse_many t (List.map loop ls))
      | Trace.Reorder { loops = ls } -> reorder t (List.map loop ls)
      | Trace.Bind { loop = l; thread } -> bind t (loop l) thread
      | Trace.Parallel { loop = l } -> parallel t (loop l)
      | Trace.Vectorize { loop = l } -> vectorize t (loop l)
      | Trace.Unroll { loop = l } -> unroll t (loop l)
      | Trace.Annotate { loop = l; key; value } -> annotate t (loop l) key value
      | Trace.Annotate_block { block = b; key; value } ->
          annotate_block t (block b) key value
      | Trace.Compute_at { block = b; loop = l } -> compute_at t (block b) (loop l)
      | Trace.Reverse_compute_at { block = b; loop = l } ->
          reverse_compute_at t (block b) (loop l)
      | Trace.Compute_inline { block = b } -> compute_inline t (block b)
      | Trace.Reverse_compute_inline { block = b } ->
          reverse_compute_inline t (block b)
      | Trace.Cache_read { block = b; buffer = bufname; scope; out } ->
          bind_block out (cache_read t (block b) (buffer bufname) scope)
      | Trace.Cache_write { block = b; buffer = bufname; scope; out } ->
          bind_block out (cache_write t (block b) (buffer bufname) scope)
      | Trace.Set_scope { buffer = bufname; scope } ->
          ignore (set_scope t (buffer bufname) scope)
      | Trace.Blockize { loop = l; out } -> bind_block out (blockize t (loop l))
      | Trace.Tensorize { loop = l; intrin; out } ->
          bind_block out (tensorize t (loop l) intrin)
      | Trace.Tensorize_block { block = b; intrin } ->
          tensorize_block t (block b) intrin
      | Trace.Decompose_reduction { block = b; loop = l; out } ->
          bind_block out (decompose_reduction t (block b) (loop l))
      | Trace.Merge_reduction { init; update } ->
          merge_reduction t (block init) (block update)
      | Trace.Rfactor { block = b; loop = l; out } ->
          bind_block out (rfactor t (block b) (loop l))
      | Trace.Decide { knob; choice } -> record_decision t knob choice)
    tr;
  t
