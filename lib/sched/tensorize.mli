(** Tensorize: replace a block's computation with a registered tensor
    intrinsic after structurally matching its description (paper §4.1). *)

open Tir_ir

(** Match the named block against the intrinsic's description and splice in
    its implementation. *)
val tensorize_block : State.t -> string -> string -> unit

(** Blockize the subtree under the loop, then tensorize the new block;
    returns the tensorized block's name. *)
val tensorize : State.t -> Var.t -> string -> string
