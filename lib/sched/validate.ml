(** Program validation (paper §3.3).

    Three families of checks, used both to reject ill-formed user programs
    and to filter false positives during evolutionary search:

    - {b loop-nest validation}: every block's iterator bindings must form a
      bijective quasi-affine mapping from the enclosing loops, with domains
      matching the declared iterator extents, and reduction iterators must
      not be bound to parallelized loops;
    - {b producer/consumer coverage}: writes to every intermediate buffer
      must cover all downstream reads, and producers must precede consumers;
    - {b threading validation}: thread-axis consistency and launch limits,
      warp execution scope for warp-level intrinsics, and cooperative-fetch
      grouping for shared-memory buffers. *)

open Tir_ir
module Iter_map = Tir_arith.Iter_map
module Region = Tir_arith.Region

type issue = { block : string; context : string; message : string }

let issue ?(context = "") block fmt =
  Fmt.kstr (fun message -> { block; context; message }) fmt

let pp_issue ppf i =
  if String.equal i.context "" then Fmt.pf ppf "[%s] %s" i.block i.message
  else Fmt.pf ppf "[%s] (loops %s) %s" i.block i.context i.message

(* Stable output order (block, message, context), duplicates collapsed:
   lint output and test expectations stay deterministic. *)
let compare_issue a b =
  let c = String.compare a.block b.block in
  if c <> 0 then c
  else
    let c = String.compare a.message b.message in
    if c <> 0 then c else String.compare a.context b.context

(* Walking context. *)
type ctx = {
  loops : (Var.t * int * Stmt.for_kind) list;  (** innermost first *)
  ranges : Bound.interval Var.Map.t;
  threads : (string * int * Var.t) list;  (** thread axis, extent, loop var *)
  order : int ref;  (** pre-order counter for ordering checks *)
}

type access = {
  a_block : string;
  a_hull : Region.hull;
  a_order : int;
  a_blockidx : Var.t list;  (** enclosing blockIdx-bound loop vars *)
  a_threads : string list;
}

let max_threads_per_block = 1024
let warp_size = 32

let kind_of_loop ctx v =
  List.find_map
    (fun (lv, _, kind) -> if Var.equal lv v then Some kind else None)
    ctx.loops

(* Enclosing loop/axis chain, outermost first, for issue context. *)
let loops_desc ctx =
  String.concat " > "
    (List.rev_map
       (fun (v, _, kind) ->
         match kind with
         | Stmt.Thread_binding th -> Fmt.str "%a[%s]" Var.pp v th
         | _ -> Fmt.str "%a" Var.pp v)
       ctx.loops)

(* Loop-nest validation for one block realize. *)
let check_realize ctx (br : Stmt.block_realize) =
  let b = br.Stmt.block in
  let domain = List.rev_map (fun (v, e, _) -> (v, e)) ctx.loops in
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let context = lazy (loops_desc ctx) in
  (match Iter_map.detect ~domain ~bindings:br.Stmt.iter_values with
  | Error msg -> add (issue ~context:(Lazy.force context) b.name "iterator binding is not bijective affine: %s" msg)
  | Ok { Iter_map.sums; extents } ->
      List.iter
        (fun ((iv : Stmt.iter_var), ext) ->
          if ext > iv.extent && Expr.equal br.Stmt.predicate (Expr.Bool true) then
            add
              (issue ~context:(Lazy.force context) b.name "binding of %a spans %d > domain %d without a predicate"
                 Var.pp iv.var ext iv.extent)
          else if ext < iv.extent then
            add
              (issue ~context:(Lazy.force context) b.name "binding of %a spans %d < domain %d" Var.pp iv.var ext
                 iv.extent))
        (List.combine b.iter_vars extents);
      (* Reduction iterators must not be bound to parallel loops. *)
      List.iter2
        (fun (iv : Stmt.iter_var) (s : Iter_map.sum) ->
          if iv.itype = Stmt.Reduce then
            List.iter
              (fun (sp : Iter_map.split) ->
                match kind_of_loop ctx sp.Iter_map.source with
                | Some (Stmt.Parallel | Stmt.Vectorized) ->
                    add
                      (issue ~context:(Lazy.force context) b.name "reduction iterator %a bound to parallel loop %a"
                         Var.pp iv.var Var.pp sp.Iter_map.source)
                | Some (Stmt.Thread_binding th) ->
                    add
                      (issue ~context:(Lazy.force context) b.name
                         "reduction iterator %a bound to thread axis %s (atomic \
                          reduction unsupported)"
                         Var.pp iv.var th)
                | _ -> ())
              s.Iter_map.splits)
        b.iter_vars sums);
  !issues

(* Thread-axis consistency along the current path. *)
let check_threads ctx (b : Stmt.block) =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let context = lazy (loops_desc ctx) in
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (axis, ext, _) ->
      match Hashtbl.find_opt tally axis with
      | Some ext' when ext' <> ext ->
          add (issue ~context:(Lazy.force context) b.name "thread axis %s bound twice with extents %d and %d" axis ext' ext)
      | Some _ -> add (issue ~context:(Lazy.force context) b.name "thread axis %s bound twice on one path" axis)
      | None -> Hashtbl.add tally axis ext)
    ctx.threads;
  let product =
    Hashtbl.fold
      (fun axis ext acc ->
        if String.length axis >= 9 && String.sub axis 0 9 = "threadIdx" then acc * ext
        else acc)
      tally 1
  in
  if product > max_threads_per_block then
    add (issue ~context:(Lazy.force context) b.name "thread block size %d exceeds limit %d" product max_threads_per_block);
  (* Execution scope of warp-level intrinsics. *)
  (match List.assoc_opt "tensorized" b.annotations with
  | Some intrin_name -> (
      match Tir_intrin.Tensor_intrin.lookup intrin_name with
      | intrin ->
          if intrin.Tir_intrin.Tensor_intrin.exec_scope = Tir_intrin.Tensor_intrin.Warp
          then begin
            if List.exists (fun (axis, _, _) -> String.equal axis "threadIdx.x") ctx.threads
            then
              add
                (issue ~context:(Lazy.force context) b.name
                   "warp-scope intrinsic %s must not execute under a threadIdx.x \
                    lane binding"
                   intrin_name)
          end
      | exception Tir_intrin.Tensor_intrin.Not_registered _ ->
          add (issue ~context:(Lazy.force context) b.name "unknown intrinsic %s" intrin_name))
  | None -> ());
  !issues

(* Record the read/write hulls of a realize, with every variable in scope
   relaxed. *)
let record_accesses ctx (br : Stmt.block_realize) reads_acc writes_acc =
  let b = br.Stmt.block in
  let bind =
    List.fold_left2
      (fun m (iv : Stmt.iter_var) value -> Var.Map.add iv.var value m)
      Var.Map.empty b.iter_vars br.Stmt.iter_values
  in
  let blockidx =
    List.filter_map
      (fun (axis, _, v) ->
        if String.length axis >= 8 && String.sub axis 0 8 = "blockIdx" then Some v
        else None)
      ctx.threads
  in
  let threads = List.map (fun (axis, _, _) -> axis) ctx.threads in
  let note acc (r : Stmt.buffer_region) =
    let r' =
      { r with Stmt.region = List.map (fun (mn, ext) -> (Expr.subst_map bind mn, ext)) r.Stmt.region }
    in
    let hull = Region.clip r.Stmt.buffer (Region.hull_or_full ctx.ranges r') in
    let prev = Option.value ~default:[] (Hashtbl.find_opt acc r.Stmt.buffer.Buffer.id) in
    Hashtbl.replace acc r.Stmt.buffer.Buffer.id
      ({ a_block = b.name; a_hull = hull; a_order = !(ctx.order); a_blockidx = blockidx; a_threads = threads } :: prev)
  in
  List.iter (note reads_acc) b.reads;
  List.iter (note writes_acc) b.writes

(** Validate a function; returns all issues found (empty = valid). *)
let check_func (f : Primfunc.t) : issue list =
  let issues = ref [] in
  let reads_acc = Hashtbl.create 16 and writes_acc = Hashtbl.create 16 in
  let order = ref 0 in
  let rec walk ctx (s : Stmt.t) =
    incr ctx.order;
    match s with
    | Stmt.For r ->
        let threads =
          match r.kind with
          | Stmt.Thread_binding th -> (th, r.extent, r.loop_var) :: ctx.threads
          | _ -> ctx.threads
        in
        walk
          {
            ctx with
            loops = (r.loop_var, r.extent, r.kind) :: ctx.loops;
            ranges = Var.Map.add r.loop_var (Bound.of_extent r.extent) ctx.ranges;
            threads;
          }
          r.body
    | Stmt.Block br ->
        let b = br.Stmt.block in
        if not (String.equal b.name Primfunc.root_block_name) then begin
          issues := check_realize ctx br @ check_threads ctx b @ !issues;
          record_accesses ctx br reads_acc writes_acc
        end;
        let ranges =
          List.fold_left
            (fun m (iv : Stmt.iter_var) -> Var.Map.add iv.var (Bound.of_extent iv.extent) m)
            ctx.ranges b.iter_vars
        in
        (* Block iterators act as loops for nested blocks. *)
        let loops =
          List.fold_left
            (fun acc (iv : Stmt.iter_var) -> (iv.var, iv.extent, Stmt.Serial) :: acc)
            ctx.loops b.iter_vars
        in
        let ctx' = { ctx with ranges; loops } in
        Option.iter (walk ctx') b.init;
        walk ctx' b.body
    | Stmt.Seq ss -> List.iter (walk ctx) ss
    | Stmt.If (_, th, el) ->
        walk ctx th;
        Option.iter (walk ctx) el
    | Stmt.Store _ | Stmt.Eval _ -> ()
  in
  walk { loops = []; ranges = Var.Map.empty; threads = []; order } f.Primfunc.body;
  (* Coverage and ordering for intermediate buffers. *)
  let allocs = Primfunc.alloc_buffers f in
  List.iter
    (fun (buf : Buffer.t) ->
      match Hashtbl.find_opt reads_acc buf.Buffer.id with
      | None -> ()
      | Some reads -> (
          match Hashtbl.find_opt writes_acc buf.Buffer.id with
          | None ->
              issues :=
                issue "-" "buffer %a is read but never written" Buffer.pp buf :: !issues
          | Some writes ->
              let whull =
                List.fold_left
                  (fun acc w -> Region.union_hull acc w.a_hull)
                  (List.hd writes).a_hull (List.tl writes)
              in
              List.iter
                (fun r ->
                  if not (Region.covers whull r.a_hull) then
                    issues :=
                      issue r.a_block "writes to %a do not cover its reads" Buffer.pp buf
                      :: !issues)
                reads;
              let first_write = List.fold_left (fun acc w -> min acc w.a_order) max_int writes in
              List.iter
                (fun r ->
                  if r.a_order < first_write then
                    issues :=
                      issue r.a_block "reads %a before any producer writes it" Buffer.pp
                        buf
                      :: !issues)
                reads;
              (* Cooperative fetch grouping: shared-memory producers and
                 consumers must agree on their blockIdx loops. *)
              if String.equal buf.Buffer.scope "shared" then
                List.iter
                  (fun r ->
                    List.iter
                      (fun w ->
                        if
                          not
                            (List.length r.a_blockidx = List.length w.a_blockidx
                            && List.for_all2 Var.equal r.a_blockidx w.a_blockidx)
                        then
                          issues :=
                            issue r.a_block
                              "shared buffer %a crosses thread-block boundaries \
                               (producer %s)"
                              Buffer.pp buf w.a_block
                            :: !issues)
                      writes)
                  reads))
    allocs;
  List.sort_uniq compare_issue !issues

let is_valid f = check_func f = []

(** Raise [State.Schedule_error] when invalid (for tests and the CLI). *)
let check_exn f =
  match check_func f with
  | [] -> ()
  | is ->
      State.err "validation failed:@,%a" (Fmt.list ~sep:Fmt.cut pp_issue) is
