(** Compute-location primitives: move a block under a target loop, shrunk
    to the region its counterpart actually consumes or produces there. *)

open Tir_ir

(** Move a producer block to compute, just-in-time, the region consumed
    inside the target loop's subtree. *)
val compute_at : State.t -> string -> Var.t -> unit

(** Move a consumer block to consume, immediately, the region produced
    inside the target loop's subtree. *)
val reverse_compute_at : State.t -> string -> Var.t -> unit
