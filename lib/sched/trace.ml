(** First-class schedule traces (paper §3.2, §4.4).

    Every facade primitive appends one typed instruction whose operands are
    symbolic random variables: loops are [l<n>] RVs defined by the
    instruction that produced them ([get_loops], [split], [fuse], ...),
    derived blocks are [b<n>] RVs, original blocks and buffers are quoted
    literals. A trace is therefore independent of the concrete (per-process)
    loop-variable identities of the program it was recorded against, which
    is what makes it serializable and replayable: [Schedule.replay] re-binds
    the RVs as it re-applies each instruction to a fresh function.

    The serialized form is line-oriented and human-inspectable — one
    instruction per line, [outs = name(args)] — and round-trips through
    [to_string]/[of_string]. [Decide] pseudo-instructions carry the tuning
    knob decisions a sketch consumed while scheduling, so a database record
    holding a trace needs no separate decision vector to be replayed. *)

open Tir_ir

type loop_rv = int
type block_rv = int

(** Original blocks are addressed by their (stable) name; blocks created by
    an earlier instruction by that instruction's output RV. *)
type block_ref = Bname of string | Brv of block_rv

type instr =
  | Get_loops of { block : block_ref; outs : loop_rv list }
  | Split of { loop : loop_rv; factors : int list; outs : loop_rv list }
  | Fuse of { a : loop_rv; b : loop_rv; out : loop_rv }
  | Fuse_many of { loops : loop_rv list; out : loop_rv }
  | Reorder of { loops : loop_rv list }
  | Bind of { loop : loop_rv; thread : string }
  | Parallel of { loop : loop_rv }
  | Vectorize of { loop : loop_rv }
  | Unroll of { loop : loop_rv }
  | Annotate of { loop : loop_rv; key : string; value : string }
  | Annotate_block of { block : block_ref; key : string; value : string }
  | Compute_at of { block : block_ref; loop : loop_rv }
  | Reverse_compute_at of { block : block_ref; loop : loop_rv }
  | Compute_inline of { block : block_ref }
  | Reverse_compute_inline of { block : block_ref }
  | Cache_read of { block : block_ref; buffer : string; scope : string; out : block_rv }
  | Cache_write of { block : block_ref; buffer : string; scope : string; out : block_rv }
  | Set_scope of { buffer : string; scope : string }
  | Blockize of { loop : loop_rv; out : block_rv }
  | Tensorize of { loop : loop_rv; intrin : string; out : block_rv }
  | Tensorize_block of { block : block_ref; intrin : string }
  | Decompose_reduction of { block : block_ref; loop : loop_rv; out : block_rv }
  | Merge_reduction of { init : block_ref; update : block_ref }
  | Rfactor of { block : block_ref; loop : loop_rv; out : block_rv }
  | Decide of { knob : string; choice : int }

type t = instr list (* oldest first *)

let equal (a : t) (b : t) = a = b

exception Parse_error of string

let parse_err fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Uniform encoding: every instruction is (outs, opcode, args).        *)
(* Printing and parsing share it, so the text form round-trips by      *)
(* construction.                                                       *)
(* ------------------------------------------------------------------ *)

type arg =
  | A_loop of loop_rv
  | A_block of block_ref
  | A_buf of string
  | A_str of string
  | A_int of int
  | A_loops of loop_rv list
  | A_ints of int list

type out_rv = O_loop of loop_rv | O_block of block_rv

let encode (i : instr) : out_rv list * string * arg list =
  match i with
  | Get_loops { block; outs } ->
      (List.map (fun l -> O_loop l) outs, "get_loops", [ A_block block ])
  | Split { loop; factors; outs } ->
      (List.map (fun l -> O_loop l) outs, "split", [ A_loop loop; A_ints factors ])
  | Fuse { a; b; out } -> ([ O_loop out ], "fuse", [ A_loop a; A_loop b ])
  | Fuse_many { loops; out } -> ([ O_loop out ], "fuse_many", [ A_loops loops ])
  | Reorder { loops } -> ([], "reorder", [ A_loops loops ])
  | Bind { loop; thread } -> ([], "bind", [ A_loop loop; A_str thread ])
  | Parallel { loop } -> ([], "parallel", [ A_loop loop ])
  | Vectorize { loop } -> ([], "vectorize", [ A_loop loop ])
  | Unroll { loop } -> ([], "unroll", [ A_loop loop ])
  | Annotate { loop; key; value } ->
      ([], "annotate", [ A_loop loop; A_str key; A_str value ])
  | Annotate_block { block; key; value } ->
      ([], "annotate_block", [ A_block block; A_str key; A_str value ])
  | Compute_at { block; loop } -> ([], "compute_at", [ A_block block; A_loop loop ])
  | Reverse_compute_at { block; loop } ->
      ([], "reverse_compute_at", [ A_block block; A_loop loop ])
  | Compute_inline { block } -> ([], "compute_inline", [ A_block block ])
  | Reverse_compute_inline { block } ->
      ([], "reverse_compute_inline", [ A_block block ])
  | Cache_read { block; buffer; scope; out } ->
      ([ O_block out ], "cache_read", [ A_block block; A_buf buffer; A_str scope ])
  | Cache_write { block; buffer; scope; out } ->
      ([ O_block out ], "cache_write", [ A_block block; A_buf buffer; A_str scope ])
  | Set_scope { buffer; scope } -> ([], "set_scope", [ A_buf buffer; A_str scope ])
  | Blockize { loop; out } -> ([ O_block out ], "blockize", [ A_loop loop ])
  | Tensorize { loop; intrin; out } ->
      ([ O_block out ], "tensorize", [ A_loop loop; A_str intrin ])
  | Tensorize_block { block; intrin } ->
      ([], "tensorize_block", [ A_block block; A_str intrin ])
  | Decompose_reduction { block; loop; out } ->
      ([ O_block out ], "decompose_reduction", [ A_block block; A_loop loop ])
  | Merge_reduction { init; update } ->
      ([], "merge_reduction", [ A_block init; A_block update ])
  | Rfactor { block; loop; out } ->
      ([ O_block out ], "rfactor", [ A_block block; A_loop loop ])
  | Decide { knob; choice } -> ([], "decide", [ A_str knob; A_int choice ])

let decode (name : string) (outs : out_rv list) (args : arg list) : instr =
  let loops_of outs =
    List.map
      (function O_loop l -> l | O_block _ -> parse_err "%s: loop output expected" name)
      outs
  in
  let block_out () =
    match outs with
    | [ O_block b ] -> b
    | _ -> parse_err "%s: exactly one block output expected" name
  in
  let loop_out () =
    match outs with
    | [ O_loop l ] -> l
    | _ -> parse_err "%s: exactly one loop output expected" name
  in
  let no_out () =
    if outs <> [] then parse_err "%s: no outputs expected" name
  in
  (* An empty list token is ambiguous between loops and ints. *)
  let as_loops = function
    | A_loops ls -> ls
    | A_ints [] -> []
    | _ -> parse_err "%s: loop list expected" name
  in
  let as_ints = function
    | A_ints is -> is
    | A_loops [] -> []
    | _ -> parse_err "%s: int list expected" name
  in
  match (name, args) with
  | "get_loops", [ A_block block ] -> Get_loops { block; outs = loops_of outs }
  | "split", [ A_loop loop; fs ] ->
      Split { loop; factors = as_ints fs; outs = loops_of outs }
  | "fuse", [ A_loop a; A_loop b ] -> Fuse { a; b; out = loop_out () }
  | "fuse_many", [ ls ] -> Fuse_many { loops = as_loops ls; out = loop_out () }
  | "reorder", [ ls ] ->
      no_out ();
      Reorder { loops = as_loops ls }
  | "bind", [ A_loop loop; A_str thread ] ->
      no_out ();
      Bind { loop; thread }
  | "parallel", [ A_loop loop ] ->
      no_out ();
      Parallel { loop }
  | "vectorize", [ A_loop loop ] ->
      no_out ();
      Vectorize { loop }
  | "unroll", [ A_loop loop ] ->
      no_out ();
      Unroll { loop }
  | "annotate", [ A_loop loop; A_str key; A_str value ] ->
      no_out ();
      Annotate { loop; key; value }
  | "annotate_block", [ A_block block; A_str key; A_str value ] ->
      no_out ();
      Annotate_block { block; key; value }
  | "compute_at", [ A_block block; A_loop loop ] ->
      no_out ();
      Compute_at { block; loop }
  | "reverse_compute_at", [ A_block block; A_loop loop ] ->
      no_out ();
      Reverse_compute_at { block; loop }
  | "compute_inline", [ A_block block ] ->
      no_out ();
      Compute_inline { block }
  | "reverse_compute_inline", [ A_block block ] ->
      no_out ();
      Reverse_compute_inline { block }
  | "cache_read", [ A_block block; A_buf buffer; A_str scope ] ->
      Cache_read { block; buffer; scope; out = block_out () }
  | "cache_write", [ A_block block; A_buf buffer; A_str scope ] ->
      Cache_write { block; buffer; scope; out = block_out () }
  | "set_scope", [ A_buf buffer; A_str scope ] ->
      no_out ();
      Set_scope { buffer; scope }
  | "blockize", [ A_loop loop ] -> Blockize { loop; out = block_out () }
  | "tensorize", [ A_loop loop; A_str intrin ] ->
      Tensorize { loop; intrin; out = block_out () }
  | "tensorize_block", [ A_block block; A_str intrin ] ->
      no_out ();
      Tensorize_block { block; intrin }
  | "decompose_reduction", [ A_block block; A_loop loop ] ->
      Decompose_reduction { block; loop; out = block_out () }
  | "merge_reduction", [ A_block init; A_block update ] ->
      no_out ();
      Merge_reduction { init; update }
  | "rfactor", [ A_block block; A_loop loop ] ->
      Rfactor { block; loop; out = block_out () }
  | "decide", [ A_str knob; A_int choice ] ->
      no_out ();
      Decide { knob; choice }
  | _ -> parse_err "unknown instruction or bad operands: %s" name

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let quote s = "\"" ^ String.escaped s ^ "\""

let string_of_arg = function
  | A_loop l -> Printf.sprintf "l%d" l
  | A_block (Bname n) -> "%" ^ quote n
  | A_block (Brv b) -> Printf.sprintf "b%d" b
  | A_buf n -> "@" ^ quote n
  | A_str s -> quote s
  | A_int i -> string_of_int i
  | A_loops ls -> "[" ^ String.concat ", " (List.map (Printf.sprintf "l%d") ls) ^ "]"
  | A_ints is -> "[" ^ String.concat ", " (List.map string_of_int is) ^ "]"

let string_of_out = function
  | O_loop l -> Printf.sprintf "l%d" l
  | O_block b -> Printf.sprintf "b%d" b

let instr_to_string (i : instr) =
  let outs, name, args = encode i in
  let call =
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map string_of_arg args))
  in
  match outs with
  | [] -> call
  | outs -> String.concat ", " (List.map string_of_out outs) ^ " = " ^ call

let pp_instr ppf i = Fmt.string ppf (instr_to_string i)

let pp ppf (t : t) = Fmt.(list ~sep:cut pp_instr) ppf t

let to_string (t : t) = String.concat "\n" (List.map instr_to_string t)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* Split [s] on top-level commas: commas inside quotes or brackets do not
   separate. *)
let split_commas s =
  let parts = ref [] and buf = Stdlib.Buffer.create 16 in
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  String.iter
    (fun c ->
      if !in_str then begin
        Stdlib.Buffer.add_char buf c;
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' ->
            in_str := true;
            Stdlib.Buffer.add_char buf c
        | '[' ->
            incr depth;
            Stdlib.Buffer.add_char buf c
        | ']' ->
            decr depth;
            Stdlib.Buffer.add_char buf c
        | ',' when !depth = 0 ->
            parts := Stdlib.Buffer.contents buf :: !parts;
            Stdlib.Buffer.clear buf
        | c -> Stdlib.Buffer.add_char buf c)
    s;
  parts := Stdlib.Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts

let unquote s =
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then parse_err "bad string literal %s" s
  else
    let body = String.sub s 1 (n - 2) in
    match Scanf.unescaped body with
    | v -> v
    | exception _ -> parse_err "bad escape in string literal %s" s

let rv_of_string kind s =
  let n = String.length s in
  if n < 2 || s.[0] <> kind then parse_err "bad %c-RV %s" kind s
  else
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | Some i when i >= 0 -> i
    | _ -> parse_err "bad %c-RV %s" kind s

let arg_of_string s =
  if s = "" then parse_err "empty operand"
  else if s.[0] = '%' then A_block (Bname (unquote (String.sub s 1 (String.length s - 1))))
  else if s.[0] = '@' then A_buf (unquote (String.sub s 1 (String.length s - 1)))
  else if s.[0] = '"' then A_str (unquote s)
  else if s.[0] = '[' then begin
    if s.[String.length s - 1] <> ']' then parse_err "unterminated list %s" s;
    let inner = String.trim (String.sub s 1 (String.length s - 2)) in
    if inner = "" then A_ints []
    else
      let elems = split_commas inner in
      if List.for_all (fun e -> e <> "" && e.[0] = 'l') elems then
        A_loops (List.map (rv_of_string 'l') elems)
      else
        A_ints
          (List.map
             (fun e ->
               match int_of_string_opt e with
               | Some i -> i
               | None -> parse_err "bad int %s in list" e)
             elems)
  end
  else if s.[0] = 'l' && String.length s > 1 && s.[1] >= '0' && s.[1] <= '9' then
    A_loop (rv_of_string 'l' s)
  else if s.[0] = 'b' && String.length s > 1 && s.[1] >= '0' && s.[1] <= '9' then
    A_block (Brv (rv_of_string 'b' s))
  else
    match int_of_string_opt s with
    | Some i -> A_int i
    | None -> parse_err "bad operand %s" s

let out_of_string s =
  if s = "" then parse_err "empty output RV"
  else if s.[0] = 'l' then O_loop (rv_of_string 'l' s)
  else if s.[0] = 'b' then O_block (rv_of_string 'b' s)
  else parse_err "bad output RV %s" s

(** Parse one line; [None] for blank lines and [#] comments. *)
let instr_of_string (line : string) : instr option =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else begin
    let lparen =
      match String.index_opt line '(' with
      | Some i -> i
      | None -> parse_err "missing '(' in %S" line
    in
    if line.[String.length line - 1] <> ')' then parse_err "missing ')' in %S" line;
    let head = String.sub line 0 lparen in
    let outs, name =
      match String.index_opt head '=' with
      | None -> ([], String.trim head)
      | Some eq ->
          let outs_str = String.trim (String.sub head 0 eq) in
          let outs =
            if outs_str = "" then []
            else List.map out_of_string (split_commas outs_str)
          in
          (outs, String.trim (String.sub head (eq + 1) (String.length head - eq - 1)))
    in
    let args_str =
      String.trim (String.sub line (lparen + 1) (String.length line - lparen - 2))
    in
    let args = if args_str = "" then [] else List.map arg_of_string (split_commas args_str) in
    Some (decode name outs args)
  end

let of_string (s : string) : t =
  List.filter_map instr_of_string (String.split_on_char '\n' s)

let of_string_result (s : string) : (t, Tir_core.Error.t) result =
  match of_string s with
  | t -> Ok t
  | exception Parse_error msg ->
      Error (Tir_core.Error.make ~context:"trace" Tir_core.Error.Parse msg)

(** The knob decisions recorded in the trace, oldest first; a knob decided
    more than once keeps its first value. *)
let decisions (t : t) : (string * int) list =
  List.rev
    (List.fold_left
       (fun acc i ->
         match i with
         | Decide { knob; choice } when not (List.mem_assoc knob acc) ->
             (knob, choice) :: acc
         | _ -> acc)
       [] t)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

(** Mutable recording state carried by a schedule: the instruction list
    (newest first) plus the concrete-entity-to-RV interning tables. Every
    component is a persistent value behind a mutable field, so [clone] is
    an O(1) record copy — the apply cache snapshots the builder after
    every schedule step, which made a hashtable-backed clone an O(trace²)
    tax on schedule application. *)
module IntMap = Map.Make (Int)
module StrMap = Map.Make (String)

type builder = {
  mutable rev : instr list;
  mutable next_loop : int;
  mutable next_block : int;
  mutable loop_rvs : loop_rv IntMap.t;  (** [Var.id] -> latest loop RV *)
  mutable block_rvs : block_rv StrMap.t;  (** derived block name -> RV *)
}

let builder () =
  {
    rev = [];
    next_loop = 0;
    next_block = 0;
    loop_rvs = IntMap.empty;
    block_rvs = StrMap.empty;
  }

let clone (b : builder) =
  {
    rev = b.rev;
    next_loop = b.next_loop;
    next_block = b.next_block;
    loop_rvs = b.loop_rvs;
    block_rvs = b.block_rvs;
  }

let instrs (b : builder) : t = List.rev b.rev

let length (b : builder) = List.length b.rev

let emit b i = b.rev <- i :: b.rev

let fresh_loop b =
  let rv = b.next_loop in
  b.next_loop <- rv + 1;
  rv

(* An input loop that was never produced by a traced instruction gets a
   fresh RV that no instruction defines: recording never fails, and replay
   reports the unbound RV if the trace is genuinely incomplete. *)
let loop_in b (v : Var.t) =
  match IntMap.find_opt v.Var.id b.loop_rvs with
  | Some rv -> rv
  | None ->
      let rv = fresh_loop b in
      b.loop_rvs <- IntMap.add v.Var.id rv b.loop_rvs;
      rv

let loop_out b (v : Var.t) =
  let rv = fresh_loop b in
  b.loop_rvs <- IntMap.add v.Var.id rv b.loop_rvs;
  rv

let block_in b name =
  match StrMap.find_opt name b.block_rvs with
  | Some rv -> Brv rv
  | None -> Bname name

let block_out b name =
  let rv = b.next_block in
  b.next_block <- rv + 1;
  b.block_rvs <- StrMap.add name rv b.block_rvs;
  rv

(* Pre-keys: the RV-relative spelling of a primitive {e input}, computed
   before the primitive runs. RV numbering is a pure function of the
   instruction sequence, so two schedules that applied the same primitives
   to the same base spell the same inputs identically — which is what lets
   the apply cache ([Apply_cache]) recognize a repeated step. Interning an
   input is idempotent: computing a pre-key and then recording the
   instruction assigns the same RV as recording directly. *)

let loop_key b (v : Var.t) = Printf.sprintf "l%d" (loop_in b v)

let block_key b name =
  match block_in b name with
  | Brv rv -> Printf.sprintf "b%d" rv
  | Bname n -> "%" ^ n

let record_get_loops b ~block ~outs =
  let block = block_in b block in
  emit b (Get_loops { block; outs = List.map (loop_out b) outs })

let record_split b ~loop ~factors ~outs =
  let loop = loop_in b loop in
  emit b (Split { loop; factors; outs = List.map (loop_out b) outs })

let record_fuse b ~a ~b:b' ~out =
  let a = loop_in b a and b' = loop_in b b' in
  emit b (Fuse { a; b = b'; out = loop_out b out })

let record_fuse_many b ~loops ~out =
  let loops = List.map (loop_in b) loops in
  emit b (Fuse_many { loops; out = loop_out b out })

let record_reorder b ~loops = emit b (Reorder { loops = List.map (loop_in b) loops })
let record_bind b ~loop ~thread = emit b (Bind { loop = loop_in b loop; thread })
let record_parallel b ~loop = emit b (Parallel { loop = loop_in b loop })
let record_vectorize b ~loop = emit b (Vectorize { loop = loop_in b loop })
let record_unroll b ~loop = emit b (Unroll { loop = loop_in b loop })

let record_annotate b ~loop ~key ~value =
  emit b (Annotate { loop = loop_in b loop; key; value })

let record_annotate_block b ~block ~key ~value =
  emit b (Annotate_block { block = block_in b block; key; value })

let record_compute_at b ~block ~loop =
  let block = block_in b block in
  emit b (Compute_at { block; loop = loop_in b loop })

let record_reverse_compute_at b ~block ~loop =
  let block = block_in b block in
  emit b (Reverse_compute_at { block; loop = loop_in b loop })

let record_compute_inline b ~block = emit b (Compute_inline { block = block_in b block })

let record_reverse_compute_inline b ~block =
  emit b (Reverse_compute_inline { block = block_in b block })

let record_cache_read b ~block ~buffer ~scope ~out =
  let block = block_in b block in
  emit b (Cache_read { block; buffer; scope; out = block_out b out })

let record_cache_write b ~block ~buffer ~scope ~out =
  let block = block_in b block in
  emit b (Cache_write { block; buffer; scope; out = block_out b out })

let record_set_scope b ~buffer ~scope = emit b (Set_scope { buffer; scope })

let record_blockize b ~loop ~out =
  let loop = loop_in b loop in
  emit b (Blockize { loop; out = block_out b out })

let record_tensorize b ~loop ~intrin ~out =
  let loop = loop_in b loop in
  emit b (Tensorize { loop; intrin; out = block_out b out })

let record_tensorize_block b ~block ~intrin =
  emit b (Tensorize_block { block = block_in b block; intrin })

let record_decompose_reduction b ~block ~loop ~out =
  let block = block_in b block and loop = loop_in b loop in
  emit b (Decompose_reduction { block; loop; out = block_out b out })

let record_merge_reduction b ~init ~update =
  emit b (Merge_reduction { init = block_in b init; update = block_in b update })

let record_rfactor b ~block ~loop ~out =
  let block = block_in b block and loop = loop_in b loop in
  emit b (Rfactor { block; loop; out = block_out b out })

let record_decide b ~knob ~choice = emit b (Decide { knob; choice })
