(** Schedule state: the current program plus lookup helpers.

    The record is exposed because primitive modules ([Loop_transform],
    [Cache], ...) replace [func] directly; everything else should go
    through the accessors. The trace builder is reachable only via
    [builder], which the facade ([Schedule]) uses to append one typed
    instruction per applied primitive. *)

open Tir_ir

exception Schedule_error of string

(** Raise [Schedule_error] with a formatted message. *)
val err : ('a, Format.formatter, unit, 'b) format4 -> 'a

type t = {
  mutable func : Primfunc.t;
  mutable name_counter : int;
  mutable tr : Trace.builder;  (** applied primitives, typed *)
  use_cache : bool;  (** consult {!Apply_cache} in the facade *)
  mutable cache_node : int;  (** current {!Apply_cache} chain node; 0 = none *)
}

val create : Primfunc.t -> t

(** Like [create], but facade primitives go through the per-domain
    {!Apply_cache}: a step already applied to this exact state (same chain
    of primitives from the same physical base function) adopts the cached
    result instead of re-running the transform. Safe only when every loop
    [Var] / [Buffer] handed to primitives derives from this state's own
    lineage — sketch application and trace replay qualify; callers passing
    externally created entities must use [create]. *)
val create_cached : Primfunc.t -> t

val func : t -> Primfunc.t

(** Independent copy: shares no mutable state with the original. *)
val copy : t -> t

(** The trace recording state (used by the [Schedule] facade). *)
val builder : t -> Trace.builder

(** {2 Apply-cache plumbing (used by the [Schedule] facade)} *)

val use_cache : t -> bool
val cache_node : t -> int
val set_cache_node : t -> int -> unit
val name_counter : t -> int

(** Replace the whole mutable state with a cached snapshot (apply-cache
    hit). [tr] must be a fresh clone — the caller keeps mutating it. *)
val adopt :
  t -> func:Primfunc.t -> name_counter:int -> tr:Trace.builder -> node:int -> unit

(** Applied primitives as a typed trace, oldest first. *)
val instructions : t -> Trace.t

(** [instructions] rendered as script lines, oldest first. *)
val trace : t -> string list

val pp_trace : Format.formatter -> t -> unit

(** A fresh block/buffer name unique within this schedule. *)
val fresh_name : t -> string -> string

val body : t -> Stmt.t
val set_body : t -> Stmt.t -> unit

(** Path and record of the loop with this variable; raises if absent. *)
val loop_path : t -> Var.t -> Zipper.path * Stmt.for_

(** Path and realize of the named block; raises if absent. *)
val block_path : t -> string -> Zipper.path * Stmt.block_realize

val get_block : t -> string -> Stmt.block

(** Loop variables enclosing the named block, outermost first. Untraced —
    the facade's [Schedule.get_loops] records a [Get_loops] instruction. *)
val get_loops : t -> string -> Var.t list

val loop_extent : t -> Var.t -> int

(** Replace the subtree at [path] with [subtree]. *)
val replace : t -> Zipper.path -> Stmt.t -> unit

(** Root-allocated intermediate buffers. *)
val alloc_buffers : t -> Buffer.t list

val add_alloc : t -> Buffer.t -> unit
val remove_alloc : t -> Buffer.t -> unit

(** All non-root blocks, pre-order. *)
val blocks : t -> Stmt.block_realize list

(** Simplification context from the ranges in scope at [path]. *)
val simplify_ctx : Zipper.path -> Tir_arith.Simplify.ctx

val simpl : Zipper.path -> Expr.t -> Expr.t

(** Prune loops whose body is an empty sequence. *)
val prune_empty : Stmt.t -> Stmt.t option

(** Remove the realize of block [name] from the tree, pruning emptied
    loops. Returns the removed realize. *)
val remove_block : t -> string -> Stmt.block_realize

val pp_schedule : Format.formatter -> t -> unit
