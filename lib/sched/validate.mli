(** Program validation (paper §3.3): loop-nest validation (bijective
    quasi-affine iterator bindings, domain checks, no parallelized
    reductions), producer/consumer coverage and ordering, and threading
    validation (axis consistency, launch limits, warp execution scope,
    cooperative-fetch grouping for shared memory).

    Used three ways, as in the paper: on manually written or imported
    programs, after schedule primitives, and as the false-positive filter
    inside the evolutionary search. *)

open Tir_ir

type issue = {
  block : string;
  context : string;  (** enclosing loop/axis chain, outermost first; [""] when none *)
  message : string;
}

val pp_issue : Format.formatter -> issue -> unit

val max_threads_per_block : int
val warp_size : int

(** All issues found; empty means valid. Deduplicated and sorted by
    (block, message) so output is deterministic. *)
val check_func : Primfunc.t -> issue list

val is_valid : Primfunc.t -> bool

(** Raises [State.Schedule_error] listing the issues when invalid. *)
val check_exn : Primfunc.t -> unit
