(** Inlining primitives. *)

(** Remove an injective elementwise producer by substituting its
    definition into all consumers. *)
val compute_inline : State.t -> string -> unit

(** Fold an elementwise consumer back into its (non-reduction) producer. *)
val reverse_compute_inline : State.t -> string -> unit
