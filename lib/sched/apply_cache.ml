(** Memoized primitive applications — the engine behind incremental trace
    replay and sketch application.

    Applying a schedule primitive is a whole-program rewrite; during search
    thousands of candidate schedules re-apply long identical instruction
    prefixes (a mutated decision vector typically changes one knob, so every
    step up to the first divergent instruction repeats verbatim). This cache
    snapshots the complete schedule state — function, name counter, trace
    builder, primitive outputs — after every facade step, so a repeated step
    adopts the snapshot in O(1) instead of re-running the transform.

    {2 Lineage chaining}

    Entries are keyed by [(parent node, pre-key)]: the node id of the state
    the step extended plus the RV-relative spelling of the primitive and its
    inputs ({!Trace.loop_key}/{!Trace.block_key}). Chains are rooted at a
    per-physical-base-function node ({!base_node}), so a hit can only extend
    the exact stored chain: the adopted function, its loop [Var]s and
    [Buffer]s all belong to the lineage whose earlier outputs the caller
    already holds. This is what makes adoption sound — schedule closures
    keep loop variables and buffers from earlier steps, and those values
    remain valid in every state reachable through the chain. Node ids are
    process-unique and never reused, so eviction can never let a stale link
    be forged.

    Results are bit-identical with the cache on or off, at any [TIR_JOBS]:
    entries are produced by the same deterministic transforms from a
    physically shared base, and everything the search observes — printed
    scripts, traces and their RVs, features, simulated latencies, memo keys
    — is structural, never dependent on per-process [Var.id]/[Buffer.id].

    Tables are per-domain (no locks, no cross-domain sharing); only states
    created with [State.create_cached] consult the cache, and the facade
    bypasses it entirely under deep-check mode. Failed primitives are never
    cached (a transform may mutate the state before raising). *)

open Tir_ir

(** A primitive's outputs, as stored in a snapshot. *)
type outs =
  | R_unit
  | R_loop of Var.t
  | R_loops of Var.t list
  | R_block of string
  | R_buf of Buffer.t

type entry = {
  e_node : int;  (** this snapshot's chain node id *)
  e_func : Primfunc.t;
  e_name_counter : int;
  e_builder : Trace.builder;  (** frozen post-record snapshot; clone to use *)
  e_outs : outs;
}

(* Kill switch for A/B comparison (bench) and debugging. *)
let enabled =
  ref
    (match Sys.getenv_opt "TIR_APPLY_CACHE" with
    | Some ("0" | "off") -> false
    | None | Some _ -> true)

let set_enabled b = enabled := b
let is_enabled () = !enabled

module Key = struct
  type t = int * string

  let equal (a, b) (c, d) = Int.equal a c && String.equal b d
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

let cap = 1 lsl 16

let tbl_key : entry Tbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Tbl.create 1024)

(* Node ids are process-unique (never reused): an evicted-and-refilled
   table can never alias an old chain. 0 is reserved for "no chain". *)
let next_node = Atomic.make 1
let fresh_node () = Atomic.fetch_and_add next_node 1

(* One root node per physical base function per domain. Chains never cross
   physically distinct bases, even when they are structurally equal — two
   copies of a function carry different Var/Buffer ids, and adopting across
   them would hand the caller entities its own lineage does not contain. *)
module FuncTbl = Hashtbl.Make (struct
  type t = Primfunc.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let base_cap = 512

let base_tbl : int FuncTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> FuncTbl.create 64)

let base_node (f : Primfunc.t) =
  let tbl = Domain.DLS.get base_tbl in
  match FuncTbl.find_opt tbl f with
  | Some id -> id
  | None ->
      if FuncTbl.length tbl >= base_cap then FuncTbl.reset tbl;
      let id = fresh_node () in
      FuncTbl.add tbl f id;
      id

let hits = Atomic.make 0
let misses = Atomic.make 0

let find ~parent ~prekey =
  let tbl = Domain.DLS.get tbl_key in
  match Tbl.find_opt tbl (parent, prekey) with
  | Some e ->
      Atomic.incr hits;
      Some e
  | None ->
      Atomic.incr misses;
      None

let store ~parent ~prekey ~func ~name_counter ~builder ~outs =
  let tbl = Domain.DLS.get tbl_key in
  if Tbl.length tbl >= cap then Tbl.reset tbl;
  let e = { e_node = fresh_node (); e_func = func; e_name_counter = name_counter; e_builder = builder; e_outs = outs } in
  Tbl.replace tbl (parent, prekey) e;
  e

(** Cumulative (process-wide) hit/miss counters, in that order. *)
let stats () = (Atomic.get hits, Atomic.get misses)

(** Drop the calling domain's tables and zero the counters (tests, bench
    A/B sections). Other domains' tables are untouched — stale entries
    there are merely unreachable through new chains. *)
let clear () =
  Tbl.reset (Domain.DLS.get tbl_key);
  FuncTbl.reset (Domain.DLS.get base_tbl);
  Atomic.set hits 0;
  Atomic.set misses 0
